"""Worker actors: shared-nothing partition executors (paper §IV).

A :class:`PartitionRuntime` owns one graph partition's store, memo store,
and run queue. In the partitioned (GraphDance) configuration exactly one
:class:`Worker` serves each runtime — single-threaded, latch-free access, as
in the paper. The non-partitioned baseline attaches several workers to one
shared runtime; every state access then pays a latch/contention penalty from
the cost model (paper §V-A2).

Workers implement tier 1 of the two-tier I/O scheduler: per-destination-node
message buffers flushed at the size threshold or when the worker idles, with
finished-weight coalescing piggybacked on flushes (paper §IV-A(a), §IV-B).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Tuple

from repro.core.memo import MemoStore
from repro.core.progress import ProgressMode
from repro.core.traverser import Traverser
from repro.core.weight import GROUP_MODULUS, WeightAccumulator
from repro.errors import ExecutionError
from repro.graph.partition import PartitionStore
from repro.runtime.metrics import MsgKind
from repro.runtime.network import TRACKER_DST, Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import AsyncPSTMEngine

#: wire size of a progress report (weight or delta + headers)
PROGRESS_MSG_BYTES = 16


class PartitionRuntime:
    """One partition's queue + state, shared by its worker(s)."""

    def __init__(self, pid: int, store: PartitionStore, memo_store: MemoStore) -> None:
        self.pid = pid
        self.store = store
        self.memo_store = memo_store
        self.queue: Deque[Traverser] = deque()
        # Bounded arrival staging for credit-gated remote traversers (empty
        # and untouched unless EngineConfig.inbox_capacity is set). Workers
        # drain it into the run queue at the start of each run, releasing
        # the senders' credits at processing pace; its depth is bounded by
        # the credit gate's capacity.
        self.inbox: Deque[Traverser] = deque()
        # Local traversers per (query, stage): drives weight-flush decisions.
        # A plain dict whose keys are removed on decrement-to-zero and on
        # session teardown — a Counter here leaks one entry per (query,
        # stage) ever seen, which grows without bound under long mixed
        # workloads.
        self.stage_counts: Dict[Tuple[int, int], int] = {}
        self.workers: List["Worker"] = []
        # High-water marks for the soak harness's bounded-memory assertions
        # (sampled at arrival batches, not per local append).
        self.peak_queue_depth = 0
        self.peak_inbox_depth = 0

    def enqueue(self, travs: List[Traverser], now: float) -> None:
        """Queue traversers and wake an idle worker."""
        counts = self.stage_counts
        append = self.queue.append
        # Traversers in one batch message overwhelmingly share one (query,
        # stage); counting per contiguous key run replaces a tuple build and
        # a dict update per traverser with one of each per run.
        last_q = last_s = -1
        key = None
        kcount = 0
        for trav in travs:
            append(trav)
            if trav.query_id != last_q or trav.stage != last_s:
                if kcount:
                    counts[key] = counts.get(key, 0) + kcount
                last_q = trav.query_id
                last_s = trav.stage
                key = (last_q, last_s)
                kcount = 1
            else:
                kcount += 1
        if kcount:
            counts[key] = counts.get(key, 0) + kcount
        depth = len(self.queue)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        self.wake(now)

    def enqueue_remote(self, travs: List[Traverser], now: float) -> None:
        """Stage credit-gated arrivals in the bounded inbox.

        Stage counts are charged at insertion (not at drain) so idle-flush
        decisions and naive-mode quiescence checks see inboxed traversers
        as local work; the worker transfers them to the run queue — and
        releases their credits — at the start of its next run.
        """
        inbox = self.inbox
        counts = self.stage_counts
        for trav in travs:
            inbox.append(trav)
            key = (trav.query_id, trav.stage)
            counts[key] = counts.get(key, 0) + 1
        depth = len(inbox)
        if depth > self.peak_inbox_depth:
            self.peak_inbox_depth = depth
        self.wake(now)

    def dec_stage_count(self, key: Tuple[int, int], n: int = 1) -> None:
        """Decrement a (query, stage) count, dropping the key at zero."""
        counts = self.stage_counts
        left = counts.get(key, 0) - n
        if left > 0:
            counts[key] = left
        else:
            counts.pop(key, None)

    def drop_query(self, query_id: int) -> None:
        """Purge all stage counts of a finished/aborted query."""
        counts = self.stage_counts
        for key in [k for k in counts if k[0] == query_id]:
            del counts[key]

    def reclaim_query(self, query_id: int) -> Tuple[int, int, int]:
        """Purge a query's queued + inboxed traversers and stage counts.

        The cancellation/teardown primitive: returns ``(weight, n_queue,
        n_inbox)`` where ``weight`` is the summed progression weight of the
        removed traversers (mod 2^64) — the engine reports it back to the
        progress tracker so the stage ledger still closes — and the counts
        let the engine release the inboxed traversers' sender credits.
        """
        weight = 0
        n_queue = 0
        n_inbox = 0
        if self.queue:
            kept = []
            for trav in self.queue:
                if trav.query_id == query_id:
                    weight += trav.weight
                    n_queue += 1
                else:
                    kept.append(trav)
            if n_queue:
                self.queue.clear()
                self.queue.extend(kept)
        if self.inbox:
            kept = []
            for trav in self.inbox:
                if trav.query_id == query_id:
                    weight += trav.weight
                    n_inbox += 1
                else:
                    kept.append(trav)
            if n_inbox:
                self.inbox.clear()
                self.inbox.extend(kept)
        self.drop_query(query_id)
        return weight % GROUP_MODULUS, n_queue, n_inbox

    def purge_query(self, query_id: int) -> int:
        """Remove a query's queued traversers and stage counts.

        Used by crash recovery before a retry so stale traversers of the
        abandoned attempt cannot execute against the fresh one. Returns the
        number of traversers removed. (Cancellation uses
        :meth:`reclaim_query` directly: it additionally needs the purged
        weight and the inbox count for credit release.)
        """
        _weight, n_queue, n_inbox = self.reclaim_query(query_id)
        return n_queue + n_inbox

    def wake(self, now: float) -> None:
        """Wake one idle, alive worker (the least busy) to process the queue."""
        if not self.queue and not self.inbox:
            return
        idle = [w for w in self.workers if not w.scheduled and w.alive]
        if idle:
            min(idle, key=lambda w: w.busy_until).wake(now)


class Worker:
    """A single simulated CPU core executing traversers for one runtime."""

    def __init__(
        self,
        engine: "AsyncPSTMEngine",
        wid: int,
        node: int,
        runtime: PartitionRuntime,
    ) -> None:
        self.engine = engine
        self.wid = wid
        self.node = node
        self.runtime = runtime
        runtime.workers.append(self)
        self.busy_until = 0.0
        self.scheduled = False
        #: False while a crash/stall fault holds this worker down
        self.alive = True
        #: compute slowdown multiplier (straggler injection; 1.0 = healthy)
        self.slowdown = 1.0
        #: total simulated CPU time this worker has burned (utilization)
        self.busy_total = 0.0
        # tier-1 buffers: destination node -> control messages / traversers
        self._buffers: Dict[int, List[Message]] = {}
        # traverser buffer entries are (target pid, traverser, wire size)
        self._trav_buffers: Dict[int, List[Tuple[int, Traverser, int]]] = {}
        self._buffer_bytes: Dict[int, int] = {}
        # weight coalescing accumulators per (query, stage)
        self._accums: Dict[Tuple[int, int], WeightAccumulator] = {}

    # -- scheduling --------------------------------------------------------

    def wake(self, now: float) -> None:
        """Schedule a run at max(now, busy_until) if idle."""
        if self.scheduled or not self.alive:
            return
        self.scheduled = True
        self.engine.clock.schedule_at(max(now, self.busy_until), self._run)

    def add_setup_cost(self, now: float, cost_us: float) -> None:
        """Charge per-query setup work (operator instantiation, Banyan/GAIA)."""
        self.busy_until = max(self.busy_until, now) + cost_us

    # -- fault injection ----------------------------------------------------

    def crash(self) -> None:
        """Kill this worker: its core-resident state is lost.

        Queued traversers (when this is the runtime's only worker, i.e. the
        shared-nothing configuration), tier-1 message buffers, and weight
        accumulators all vanish — along with the progression weight they
        carried, which is exactly what the progress tracker's stuck ledger
        later detects. Partition memos are invalidated by the engine's
        crash handler, which also force-retries every affected query.
        """
        self.alive = False
        self.scheduled = False
        self._buffers.clear()
        self._trav_buffers.clear()
        self._buffer_bytes.clear()
        self._accums.clear()
        if len(self.runtime.workers) == 1:
            self.runtime.queue.clear()
            self.runtime.stage_counts.clear()
            dropped = len(self.runtime.inbox)
            if dropped:
                # Inboxed traversers die with the worker, but their sender
                # credits must not: a crash that swallowed credits would
                # deadlock every sender still throttled on this partition.
                self.runtime.inbox.clear()
                gates = self.engine._gates
                if gates is not None:
                    gates[self.runtime.pid].release(dropped)

    def stall(self) -> None:
        """Freeze this worker without losing state (GC pause, sched hiccup).

        Queued work and buffers survive; :meth:`recover` resumes exactly
        where the worker stopped, so no progression weight is lost.
        """
        self.alive = False
        self.scheduled = False

    def recover(self, now: float) -> None:
        """Bring a crashed/stalled worker back up and resume its queue."""
        self.alive = True
        self.busy_until = max(self.busy_until, now)
        self.runtime.wake(now)

    # -- cancellation -------------------------------------------------------

    def reclaim_query(self, query_id: int) -> Tuple[int, int]:
        """Discard a cancelled query's buffered traversers and pending
        coalesced weight.

        Returns ``(weight, n_traversers)``: the progression weight removed
        from this worker (buffered children that will now never be sent,
        plus finished weight absorbed into accumulators but not yet
        flushed), which the engine reports back to the tracker so the
        cancelled stage's ledger still reaches the root weight.
        """
        weight = 0
        n = 0
        for dst_node, pairs in self._trav_buffers.items():
            if not pairs:
                continue
            kept = []
            removed_bytes = 0
            for pid, trav, size in pairs:
                if trav.query_id == query_id:
                    weight += trav.weight
                    n += 1
                    removed_bytes += size
                else:
                    kept.append((pid, trav, size))
            if removed_bytes:
                self._trav_buffers[dst_node] = kept
                left = self._buffer_bytes.get(dst_node, 0) - removed_bytes
                self._buffer_bytes[dst_node] = max(0, left)
        for key in [k for k in self._accums if k[0] == query_id]:
            pending = self._accums.pop(key).flush()
            if pending is not None:
                weight += pending
        return weight % GROUP_MODULUS, n

    # -- main loop -----------------------------------------------------------

    def _run(self) -> None:
        if not self.alive:
            # A run scheduled before the fault fired; drop it. recover()
            # re-wakes the runtime.
            self.scheduled = False
            return
        if self.engine.config.scalar_execution:
            self._run_scalar()
        else:
            self._run_batched()

    def _run_scalar(self) -> None:
        """Reference execution loop: one traverser per kernel call.

        Kept behind ``EngineConfig.scalar_execution`` so the equivalence
        suite can assert the batched loop reproduces it bit for bit.
        """
        self.scheduled = False
        t = self.engine.clock.now
        queue = self.runtime.queue
        stage_counts = self.runtime.stage_counts
        cm = self.engine.cost
        config = self.engine.config
        metrics = self.engine.metrics
        sharers = len(self.runtime.workers)
        cpu = 0.0

        inbox = self.runtime.inbox
        if inbox:
            # Drain credit-gated arrivals into the run queue, releasing
            # their senders' credits at processing pace (backpressure).
            moved = min(len(inbox), config.batch_size)
            for _ in range(moved):
                queue.append(inbox.popleft())
            gates = self.engine._gates
            if gates is not None:
                gates[self.runtime.pid].release(moved)

        budgets_armed = self.engine._budgets_armed
        touched = set() if budgets_armed else None

        for _ in range(config.batch_size):
            if not queue:
                break
            trav = queue.popleft()
            self.runtime.dec_stage_count((trav.query_id, trav.stage))
            session = self.engine.sessions.get(trav.query_id)
            if session is None:
                # Query already finished/cancelled. A cancelling query's
                # dropped traversers carry progression weight that must be
                # reclaimed, or its stage ledger never closes.
                if self.engine._cancelling and (
                    trav.query_id in self.engine._cancelling
                ):
                    self.engine._note_reclaimed(
                        trav.query_id, trav.stage, trav.weight, 1
                    )
                continue
            if budgets_armed:
                touched.add(trav.query_id)
            ctx = session.context(self.runtime.pid)
            result = session.machine.execute(ctx, trav, session.rng)
            cost_us = cm.op_cost_us(result.cost)
            if sharers > 1:
                # Shared-state (non-partitioned) penalty: reduced locality on
                # all compute, plus latches with contention proportional to
                # the threads concurrently hitting this partition.
                busy = 1 + sum(
                    1 for w in self.runtime.workers if w is not self and w.scheduled
                )
                cost_us = cost_us * cm.shared_locality_factor
                cost_us += cm.shared_state_penalty_us(result.cost, busy)
            cpu += cost_us
            metrics.steps_executed += 1
            metrics.edges_scanned += result.cost.edges
            metrics.memo_ops += result.cost.memo_ops
            metrics.traversers_spawned += len(result.children)
            session.qmetrics.steps_executed += 1
            op_idx = trav.op_idx
            session.op_steps[op_idx] = session.op_steps.get(op_idx, 0) + 1
            if result.children:
                session.op_spawned[op_idx] = (
                    session.op_spawned.get(op_idx, 0) + len(result.children)
                )
                session.qmetrics.traversers_spawned += len(result.children)

            for child, routed in result.children:
                pid = self.engine.resolve_target(child, routed)
                if pid == self.runtime.pid:
                    queue.append(child)
                    key = (child.query_id, child.stage)
                    stage_counts[key] = stage_counts.get(key, 0) + 1
                else:
                    cpu += cm.serialize_us * cm.cpu_scale
                    cpu += self._buffer_traverser(
                        child, pid, self.engine.node_of(pid), t + cpu
                    )

            mode = config.progress_mode
            if mode is ProgressMode.NAIVE_CENTRAL:
                # One report per execution: active count delta.
                cpu += self._buffer_message(
                    Message(
                        MsgKind.PROGRESS,
                        TRACKER_DST,
                        ("delta", trav.query_id, trav.stage,
                         len(result.children) - 1),
                        PROGRESS_MSG_BYTES,
                        trav.query_id,
                    ),
                    self.engine.tracker_node,
                    t + cpu,
                )
            elif result.finished_weight:
                if mode.coalesced:
                    self._accum(trav.query_id, trav.stage).absorb(
                        result.finished_weight
                    )
                else:
                    cpu += self._buffer_message(
                        Message(
                            MsgKind.PROGRESS,
                            TRACKER_DST,
                            ("weight", trav.query_id, trav.stage,
                             result.finished_weight),
                            PROGRESS_MSG_BYTES,
                            trav.query_id,
                        ),
                        self.engine.tracker_node,
                        t + cpu,
                    )

        if budgets_armed and touched:
            self.engine._check_budgets_of(touched)

        # End of batch: flush coalesced weights of stages with no local work
        # left (the paper's "flush before the thread sleeps" rule, refined to
        # per-stage idleness so one busy query cannot stall another's
        # termination).
        if config.progress_mode.coalesced:
            cpu += self._flush_idle_accums(t + cpu)

        cpu *= self.slowdown
        self.busy_total += cpu
        if queue or inbox:
            self.busy_until = t + cpu
            self.scheduled = True
            self.engine.clock.schedule_at(self.busy_until, self._run)
        else:
            # Idle: flush every buffer (tier-1 idle rule).
            cpu += self._flush_all(t + cpu)
            self.busy_until = t + cpu

    def _run_batched(self) -> None:
        """Batched execution loop: drain homogeneous runs through one kernel
        call each (the default path).

        Pops contiguous runs of traversers sharing ``(query_id, op_idx)``
        and hands each run to :meth:`PSTMMachine.execute_batch`. Locally
        spawned children append to the queue *end*, so run-draining visits
        traversers in exactly the order the scalar loop would; cost pricing,
        RNG draws, buffer-flush times, and progress reports all replay the
        scalar sequence, making simulated time bit-for-bit identical. The
        wall-clock win comes from amortizing dispatch: one kernel call, one
        session/context lookup, and one metrics update per run instead of
        per traverser.
        """
        self.scheduled = False
        engine = self.engine
        t = engine.clock.now
        runtime = self.runtime
        queue = runtime.queue
        queue_append = queue.append
        stage_counts = runtime.stage_counts
        cm = engine.cost
        config = engine.config
        sessions = engine.sessions
        sharers = len(runtime.workers)
        cpu = 0.0
        budget = config.batch_size

        inbox = runtime.inbox
        if inbox:
            # Drain credit-gated arrivals into the run queue, releasing
            # their senders' credits at processing pace (backpressure).
            moved = min(len(inbox), budget)
            for _ in range(moved):
                queue.append(inbox.popleft())
            gates = engine._gates
            if gates is not None:
                gates[runtime.pid].release(moved)

        budgets_armed = engine._budgets_armed
        touched = set() if budgets_armed else None

        cpu_scale = cm.cpu_scale
        step_base_us = cm.step_base_us
        edge_us = cm.edge_us
        memo_op_us = cm.memo_op_us
        prop_us = cm.prop_us
        serialize_us = cm.serialize_us * cpu_scale
        shared = sharers > 1
        if shared:
            # All workers' scheduled flags are frozen while this run executes
            # (the event loop is serial), so the scalar loop's per-traverser
            # busy count is a per-run constant.
            busy = 1 + sum(
                1 for w in runtime.workers if w is not self and w.scheduled
            )
            locality = cm.shared_locality_factor
            per_access = cm.latch_us + cm.latch_contention * max(busy - 1, 0)
        mode = config.progress_mode
        naive = mode is ProgressMode.NAIVE_CENTRAL
        coalesced = mode.coalesced
        self_pid = runtime.pid
        ppn = engine.partitions_per_node
        tracker_node = engine.tracker_node
        modulus = GROUP_MODULUS

        # Inlined _buffer_traverser state (hot path).
        track_inflight = engine.track_inflight
        note_outbound = engine.note_outbound
        trav_buffers = self._trav_buffers
        buffer_bytes = self._buffer_bytes
        flush_threshold = engine.flush_threshold_bytes
        flush = self._flush
        # estimated_size_bytes() depends only on the payload tuple, and every
        # payload referenced during this _run stays reachable (run list,
        # queue, buffers), so ids are stable for the cache's lifetime.
        size_cache: Dict[int, int] = {}
        size_cache_get = size_cache.get
        # Siblings share their parent's payload reference, so one identity
        # compare usually replaces the id()+dict lookup.
        last_payload = object()
        last_size = 0
        # Node-indexed mirrors of the per-destination traverser buffers:
        # a list index replaces three dict operations per remote child. The
        # byte counts are written back to the dict around every _flush /
        # _buffer_message call (their only other readers during this _run)
        # and once after the drain loop.
        num_nodes = engine.nodes
        local_bufs: List = [None] * num_nodes
        local_bytes = [0] * num_nodes

        def sync_bufs() -> None:
            for nd in range(num_nodes):
                if local_bufs[nd] is not None:
                    buffer_bytes[nd] = local_bytes[nd]
                    local_bufs[nd] = None

        dec_stage_count = runtime.dec_stage_count

        steps = 0
        edges_scanned = 0
        memo_ops_total = 0
        spawned_total = 0

        # Per-query hoisted machine state; refreshed when a run's query
        # differs from the previous run's. The loop below fuses
        # PSTMMachine.execute_batch (kernel + weight split + child routing)
        # with the enqueue/buffer/progress handling: with short runs the
        # per-run call overhead and intermediate (child, pid) materialization
        # are a measurable slice of the hot path. machine.execute_batch stays
        # the reference implementation of exactly this sequence.
        cur_qid = None
        session = None

        while budget > 0 and queue:
            head = queue.popleft()
            budget -= 1
            query_id = head.query_id
            op_idx = head.op_idx
            run = [head]
            while budget > 0 and queue:
                nxt = queue[0]
                if nxt.query_id != query_id or nxt.op_idx != op_idx:
                    break
                run.append(queue.popleft())
                budget -= 1
            n_run = len(run)
            stage = head.stage
            dec_stage_count((query_id, stage), n_run)
            if query_id != cur_qid:
                cur_qid = query_id
                session = sessions.get(query_id)
                if budgets_armed:
                    touched.add(query_id)
                if session is not None:
                    machine = session.machine
                    ctx = session.context(self_pid)
                    getrandbits = session.rng.getrandbits
                    ops = machine.plan.ops
                    num_ops = len(ops)
                    route_info = machine.route_info()
                    partitioner = machine.partitioner
                    pcache = getattr(partitioner, "_cache", None)
                    pcache_get = None if pcache is None else pcache.get
                    num_partitions = partitioner.num_partitions
                    barrier_route = machine.barrier_route
                    op_steps = session.op_steps
                    op_spawned = session.op_spawned
                    qmetrics = session.qmetrics
            if session is None:
                # Query already finished/cancelled. A cancelling query's
                # dropped run carries progression weight that must be
                # reclaimed, or its stage ledger never closes.
                if engine._cancelling and query_id in engine._cancelling:
                    dropped = 0
                    for trav in run:
                        dropped += trav.weight
                    engine._note_reclaimed(query_id, stage, dropped, n_run)
                continue
            op = ops[op_idx]
            outcome = op.apply_batch(ctx, run)
            spec_rows = outcome.children
            costs = outcome.costs
            steps += n_run
            qmetrics.steps_executed += n_run
            op_steps[op_idx] = op_steps.get(op_idx, 0) + n_run
            run_spawned = 0
            fin_total = 0
            fin_count = 0
            prev_tuple = None
            prev_cost_us = 0.0
            prev_edges = 0
            prev_memo_ops = 0
            last_idx = -1
            c_stage = c_mode = child_op = c_key = None
            lkey = None
            lcount = 0
            for trav, specs, ct in zip(run, spec_rows, costs):
                # Non-Expand kernels share one cost tuple across the run
                # ([t] * n), so an identity hit replays the exact float
                # computed for the previous traverser.
                if ct is prev_tuple:
                    cost_us = prev_cost_us
                    edges = prev_edges
                    memo_ops = prev_memo_ops
                else:
                    base, edges, memo_ops, props = ct
                    # Same expression shape/order as CostModel.op_cost_us —
                    # float addition is not associative, so the term order is
                    # part of the equivalence contract.
                    cost_us = cpu_scale * (
                        base * step_base_us
                        + edges * edge_us
                        + memo_ops * memo_op_us
                        + props * prop_us
                    )
                    if shared:
                        cost_us = cost_us * locality
                        cost_us += (memo_ops + props + edges * 0.25) * per_access
                    prev_tuple = ct
                    prev_cost_us = cost_us
                    prev_edges = edges
                    prev_memo_ops = memo_ops
                cpu += cost_us
                edges_scanned += edges
                memo_ops_total += memo_ops
                if specs:
                    nc = len(specs)
                    run_spawned += nc
                    if nc == 1:
                        # Single-child fast path (filter passes, dedup
                        # admits, loop continues): no RNG draw — the child
                        # inherits the parent weight — and no zip machinery.
                        # The block below is textually duplicated in the
                        # multi-child loop; keep the two in sync.
                        vertex, c_idx, payload, loops = specs[0]
                        weight = trav.weight % modulus
                        if c_idx != last_idx:
                            if c_idx < 0 or c_idx >= num_ops:
                                raise ExecutionError(
                                    f"op {op.name} produced child with bad "
                                    f"target index {c_idx}"
                                )
                            c_stage, c_mode, child_op = route_info[c_idx]
                            c_key = (query_id, c_stage)
                            last_idx = c_idx
                        child = Traverser(
                            query_id, vertex, c_idx, payload, weight,
                            c_stage, loops,
                        )
                        # Routing: same mode dispatch as execute_batch.
                        if c_mode == "vertex":
                            if pcache_get is None or (
                                pid := pcache_get(vertex)
                            ) is None:
                                pid = partitioner(vertex)
                        elif c_mode == "free":
                            if vertex >= 0:
                                if pcache_get is None or (
                                    pid := pcache_get(vertex)
                                ) is None:
                                    pid = partitioner(vertex)
                            else:
                                pid = min(-vertex - 1, num_partitions - 1)
                        elif c_mode == "fixed":
                            pid = barrier_route
                        else:
                            # Inlined resolve_partition.
                            routed = child_op.routing(partitioner, child)
                            if routed is not None:
                                pid = routed
                            elif vertex >= 0:
                                if pcache_get is None or (
                                    pid := pcache_get(vertex)
                                ) is None:
                                    pid = partitioner(vertex)
                            else:
                                pid = min(-vertex - 1, num_partitions - 1)
                        if pid == self_pid:
                            queue_append(child)
                            # Deferred stage-count increment: contiguous
                            # local children mostly share one stage key, so
                            # batch the dict update. Flushed at run end —
                            # before the next run's dec_stage_count (the only
                            # reader during this _run) can observe the map.
                            if c_key is lkey:
                                lcount += 1
                            else:
                                if lcount:
                                    stage_counts[lkey] = (
                                        stage_counts.get(lkey, 0) + lcount
                                    )
                                lkey = c_key
                                lcount = 1
                        else:
                            cpu += serialize_us
                            # Inlined _buffer_traverser (hot path).
                            if track_inflight:
                                note_outbound(query_id)
                            dst_node = pid // ppn
                            buf = local_bufs[dst_node]
                            if buf is None:
                                buf = trav_buffers.get(dst_node)
                                if buf is None:
                                    buf = trav_buffers[dst_node] = []
                                local_bufs[dst_node] = buf
                                local_bytes[dst_node] = buffer_bytes.get(
                                    dst_node, 0
                                )
                            if payload is last_payload:
                                size = last_size
                            else:
                                last_payload = payload
                                pk = id(payload)
                                size = size_cache_get(pk)
                                if size is None:
                                    size = child.estimated_size_bytes()
                                    size_cache[pk] = size
                                last_size = size
                            buf.append((pid, child, size))
                            nbytes = local_bytes[dst_node] + size
                            local_bytes[dst_node] = nbytes
                            if nbytes >= flush_threshold:
                                buffer_bytes[dst_node] = nbytes
                                local_bufs[dst_node] = None
                                cpu += flush(dst_node, t + cpu)
                    else:
                        # Inlined split_weight: same RNG draw sequence as the
                        # scalar path (ops never consume the RNG, so drawing
                        # after apply_batch instead of per apply is
                        # invisible).
                        parts = [getrandbits(64) for _ in range(nc - 1)]
                        last = trav.weight % modulus
                        for p in parts:
                            last = (last - p) % modulus
                        parts.append(last)
                        for (vertex, c_idx, payload, loops), weight in zip(
                            specs, parts
                        ):
                            if c_idx != last_idx:
                                if c_idx < 0 or c_idx >= num_ops:
                                    raise ExecutionError(
                                        f"op {op.name} produced child with "
                                        f"bad target index {c_idx}"
                                    )
                                c_stage, c_mode, child_op = route_info[c_idx]
                                c_key = (query_id, c_stage)
                                last_idx = c_idx
                            child = Traverser(
                                query_id, vertex, c_idx, payload, weight,
                                c_stage, loops,
                            )
                            # Routing: same mode dispatch as execute_batch.
                            if c_mode == "vertex":
                                if pcache_get is None or (
                                    pid := pcache_get(vertex)
                                ) is None:
                                    pid = partitioner(vertex)
                            elif c_mode == "free":
                                if vertex >= 0:
                                    if pcache_get is None or (
                                        pid := pcache_get(vertex)
                                    ) is None:
                                        pid = partitioner(vertex)
                                else:
                                    pid = min(-vertex - 1, num_partitions - 1)
                            elif c_mode == "fixed":
                                pid = barrier_route
                            else:
                                # Inlined resolve_partition.
                                routed = child_op.routing(partitioner, child)
                                if routed is not None:
                                    pid = routed
                                elif vertex >= 0:
                                    if pcache_get is None or (
                                        pid := pcache_get(vertex)
                                    ) is None:
                                        pid = partitioner(vertex)
                                else:
                                    pid = min(-vertex - 1, num_partitions - 1)
                            if pid == self_pid:
                                queue_append(child)
                                if c_key is lkey:
                                    lcount += 1
                                else:
                                    if lcount:
                                        stage_counts[lkey] = (
                                            stage_counts.get(lkey, 0) + lcount
                                        )
                                    lkey = c_key
                                    lcount = 1
                            else:
                                cpu += serialize_us
                                # Inlined _buffer_traverser (hot path).
                                if track_inflight:
                                    note_outbound(query_id)
                                dst_node = pid // ppn
                                buf = local_bufs[dst_node]
                                if buf is None:
                                    buf = trav_buffers.get(dst_node)
                                    if buf is None:
                                        buf = trav_buffers[dst_node] = []
                                    local_bufs[dst_node] = buf
                                    local_bytes[dst_node] = buffer_bytes.get(
                                        dst_node, 0
                                    )
                                if payload is last_payload:
                                    size = last_size
                                else:
                                    last_payload = payload
                                    pk = id(payload)
                                    size = size_cache_get(pk)
                                    if size is None:
                                        size = child.estimated_size_bytes()
                                        size_cache[pk] = size
                                    last_size = size
                                buf.append((pid, child, size))
                                nbytes = local_bytes[dst_node] + size
                                local_bytes[dst_node] = nbytes
                                if nbytes >= flush_threshold:
                                    buffer_bytes[dst_node] = nbytes
                                    local_bufs[dst_node] = None
                                    cpu += flush(dst_node, t + cpu)
                    if naive:
                        sync_bufs()
                        cpu += self._buffer_message(
                            Message(
                                MsgKind.PROGRESS,
                                TRACKER_DST,
                                ("delta", query_id, stage, len(specs) - 1),
                                PROGRESS_MSG_BYTES,
                                query_id,
                            ),
                            tracker_node,
                            t + cpu,
                        )
                elif naive:
                    sync_bufs()
                    cpu += self._buffer_message(
                        Message(
                            MsgKind.PROGRESS,
                            TRACKER_DST,
                            ("delta", query_id, stage, -1),
                            PROGRESS_MSG_BYTES,
                            query_id,
                        ),
                        tracker_node,
                        t + cpu,
                    )
                else:
                    weight = trav.weight
                    if weight:
                        if coalesced:
                            # Deferred to one absorb_many below: addition in
                            # Z_{2^64} is associative and the accumulator is
                            # only observed at flush time (end of _run).
                            fin_total += weight
                            fin_count += 1
                        else:
                            sync_bufs()
                            cpu += self._buffer_message(
                                Message(
                                    MsgKind.PROGRESS,
                                    TRACKER_DST,
                                    ("weight", query_id, stage, weight),
                                    PROGRESS_MSG_BYTES,
                                    query_id,
                                ),
                                tracker_node,
                                t + cpu,
                            )
            if lcount:
                stage_counts[lkey] = stage_counts.get(lkey, 0) + lcount
            if fin_count:
                self._accum(query_id, stage).absorb_many(fin_total, fin_count)
            spawned_total += run_spawned
            if run_spawned:
                op_spawned[op_idx] = op_spawned.get(op_idx, 0) + run_spawned
                qmetrics.traversers_spawned += run_spawned

        sync_bufs()
        metrics = engine.metrics
        metrics.steps_executed += steps
        metrics.edges_scanned += edges_scanned
        metrics.memo_ops += memo_ops_total
        metrics.traversers_spawned += spawned_total

        if budgets_armed and touched:
            engine._check_budgets_of(touched)

        # End of batch: flush coalesced weights of stages with no local work
        # left (same rule as the scalar loop).
        if coalesced:
            cpu += self._flush_idle_accums(t + cpu)

        cpu *= self.slowdown
        self.busy_total += cpu
        if queue or inbox:
            self.busy_until = t + cpu
            self.scheduled = True
            engine.clock.schedule_at(self.busy_until, self._run)
        else:
            # Idle: flush every buffer (tier-1 idle rule).
            cpu += self._flush_all(t + cpu)
            self.busy_until = t + cpu

    # -- buffering -------------------------------------------------------------

    def _accum(self, query_id: int, stage: int) -> WeightAccumulator:
        key = (query_id, stage)
        accum = self._accums.get(key)
        if accum is None:
            accum = WeightAccumulator()
            self._accums[key] = accum
        return accum

    def _buffer_traverser(
        self, child: Traverser, pid: int, dst_node: int, when: float
    ) -> float:
        """Stash a remote-bound traverser in the tier-1 buffer.

        Traversers are batched as ``(pid, traverser)`` pairs and packed into
        per-destination-partition batch messages at flush time, so the
        per-traverser bookkeeping stays off the hot path.
        """
        engine = self.engine
        if engine.track_inflight:
            engine.note_outbound(child.query_id)
        buf = self._trav_buffers.setdefault(dst_node, [])
        size = child.estimated_size_bytes()
        buf.append((pid, child, size))
        self._buffer_bytes[dst_node] = self._buffer_bytes.get(dst_node, 0) + size
        if self._buffer_bytes[dst_node] >= self.engine.flush_threshold_bytes:
            return self._flush(dst_node, when)
        return 0.0

    def _buffer_message(self, msg: Message, dst_node: int, when: float) -> float:
        """Stash a control message (progress report) in the tier-1 buffer.

        Returns the CPU time spent (flush syscalls, if any).
        """
        buf = self._buffers.setdefault(dst_node, [])
        buf.append(msg)
        self._buffer_bytes[dst_node] = (
            self._buffer_bytes.get(dst_node, 0) + msg.size_bytes
        )
        if self._buffer_bytes[dst_node] >= self.engine.flush_threshold_bytes:
            return self._flush(dst_node, when)
        return 0.0

    def _flush(self, dst_node: int, when: float) -> float:
        msgs = self._buffers.get(dst_node) or []
        pairs = self._trav_buffers.get(dst_node) or []
        if not msgs and not pairs:
            return 0.0
        if msgs:
            self._buffers[dst_node] = []
        gates = self.engine._gates
        gated: List[Tuple[int, List[Traverser], int]] = []
        if pairs:
            self._trav_buffers[dst_node] = []
            if gates is None:
                # Pack traversers into one batch message per target partition.
                by_pid: Dict[int, List[Traverser]] = {}
                sizes: Dict[int, int] = {}
                for pid, child, size in pairs:
                    lst = by_pid.get(pid)
                    if lst is None:
                        by_pid[pid] = [child]
                        sizes[pid] = size
                    else:
                        lst.append(child)
                        sizes[pid] += size
                msgs = list(msgs)
                for pid, travs in by_pid.items():
                    msgs.append(
                        Message(
                            MsgKind.TRAVERSER, pid, travs, sizes[pid], travs[0].query_id
                        )
                    )
            else:
                # Credit-gated path: same per-partition packing, but each
                # batch is capped at the gate's capacity (so a single send
                # is always satisfiable) and submitted through the gate,
                # which defers it when the receiver's inbox is full.
                by_pid_g: Dict[int, List[Tuple[Traverser, int]]] = {}
                for pid, child, size in pairs:
                    by_pid_g.setdefault(pid, []).append((child, size))
                for pid, entries in by_pid_g.items():
                    cap = gates[pid].capacity
                    for i in range(0, len(entries), cap):
                        chunk = entries[i:i + cap]
                        travs = [child for child, _size in chunk]
                        total = sum(size for _child, size in chunk)
                        gated.append((pid, travs, total))
        self._buffer_bytes[dst_node] = 0
        self.engine.metrics.flushes += 1
        cm = self.engine.cost
        if dst_node == self.node or self.engine.network.node_combining:
            cost = cm.combiner_handoff_us
        else:
            cost = cm.syscall_us
        if msgs:
            self.engine.network.send(self.node, dst_node, msgs, when)
        for pid, travs, total in gated:
            msg = Message(MsgKind.TRAVERSER, pid, travs, total, travs[0].query_id)
            send = (
                lambda at, m=msg, dn=dst_node:
                self.engine.network.send(self.node, dn, [m], at)
            )
            gates[pid].submit(len(travs), send, when)
        return cost * cm.cpu_scale

    def _flush_idle_accums(self, when: float) -> float:
        """Flush finished-weight accumulators whose stage has drained here."""
        cost = 0.0
        for (query_id, stage), accum in self._accums.items():
            if accum.pending_count == 0:
                continue
            if self.runtime.stage_counts.get((query_id, stage), 0) > 0:
                continue
            combined = accum.flush()
            if combined is None:
                continue
            cost += self._buffer_message(
                Message(
                    MsgKind.PROGRESS,
                    TRACKER_DST,
                    ("weight", query_id, stage, combined),
                    PROGRESS_MSG_BYTES,
                    query_id,
                ),
                self.engine.tracker_node,
                when + cost,
            )
        return cost

    def _flush_all(self, when: float) -> float:
        cost = 0.0
        for dst_node in set(self._buffers) | set(self._trav_buffers):
            cost += self._flush(dst_node, when + cost)
        return cost


class TrackerActor:
    """The centralized progress tracker / query coordinator CPU.

    A serial resource: progress and partial messages queue behind each
    other, which is exactly the bottleneck weight coalescing relieves.
    """

    def __init__(self, engine: "AsyncPSTMEngine") -> None:
        self.engine = engine
        self.free_at = 0.0
        self.messages_processed = 0

    def submit(self, msg: Message, at: float, cost_us: float) -> None:
        """Queue a message behind the tracker's serial CPU."""
        start = max(self.free_at, at)
        self.free_at = start + cost_us
        self.messages_processed += 1
        self.engine.clock.schedule_at(
            self.free_at, lambda m=msg: self.engine.tracker_handle(m)
        )

    def charge(self, at: float, cost_us: float) -> float:
        """Occupy the tracker CPU for ``cost_us``; returns completion time."""
        start = max(self.free_at, at)
        self.free_at = start + cost_us
        return self.free_at
