"""Worker actors: shared-nothing partition executors (paper §IV).

A :class:`PartitionRuntime` owns one graph partition's store, memo store,
and run queue. In the partitioned (GraphDance) configuration exactly one
:class:`Worker` serves each runtime — single-threaded, latch-free access, as
in the paper. The non-partitioned baseline attaches several workers to one
shared runtime; every state access then pays a latch/contention penalty from
the cost model (paper §V-A2).

Workers implement tier 1 of the two-tier I/O scheduler: per-destination-node
message buffers flushed at the size threshold or when the worker idles, with
finished-weight coalescing piggybacked on flushes (paper §IV-A(a), §IV-B).

The drain loop itself is layered: ``Worker._run`` owns the parts every
execution strategy shares — inbox drain with credit release, the budget
sweep, idle weight flushes, slowdown, and rescheduling — and delegates the
execution middle to a pluggable :class:`~repro.runtime.kernels.ExecutionKernel`
(scalar reference vs batched default), so fault hooks, backpressure, and
reclaim paths exist exactly once.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Set, Tuple

from repro.core.memo import MemoStore
from repro.core.traverser import Traverser
from repro.core.weight import GROUP_MODULUS, WeightAccumulator
from repro.graph.partition import PartitionStore
from repro.runtime.kernels import PROGRESS_MSG_BYTES, kernel_for
from repro.runtime.metrics import MsgKind
from repro.runtime.network import TRACKER_DST, Message
from repro.runtime.overload import check_budgets_of
from repro.runtime.trace import ACCUM_RECLAIM, CRASH_LOSS, WEIGHT_FLUSH

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import AsyncPSTMEngine

__all__ = ["PROGRESS_MSG_BYTES", "PartitionRuntime", "Worker"]


class PartitionRuntime:
    """One partition's queue + state, shared by its worker(s)."""

    def __init__(self, pid: int, store: PartitionStore, memo_store: MemoStore) -> None:
        self.pid = pid
        self.store = store
        self.memo_store = memo_store
        self.queue: Deque[Traverser] = deque()
        # Bounded arrival staging for credit-gated remote traversers (empty
        # and untouched unless EngineConfig.inbox_capacity is set). Workers
        # drain it into the run queue at the start of each run, releasing
        # the senders' credits at processing pace; its depth is bounded by
        # the credit gate's capacity.
        self.inbox: Deque[Traverser] = deque()
        # Local traversers per (query, stage): drives weight-flush decisions.
        # A plain dict whose keys are removed on decrement-to-zero and on
        # session teardown — a Counter here leaks one entry per (query,
        # stage) ever seen, which grows without bound under long mixed
        # workloads.
        self.stage_counts: Dict[Tuple[int, int], int] = {}
        self.workers: List["Worker"] = []
        # High-water marks for the soak harness's bounded-memory assertions
        # (sampled at arrival batches, not per local append).
        self.peak_queue_depth = 0
        self.peak_inbox_depth = 0

    def enqueue(self, travs: List[Traverser], now: float) -> None:
        """Queue traversers and wake an idle worker."""
        counts = self.stage_counts
        append = self.queue.append
        # Traversers in one batch message overwhelmingly share one (query,
        # stage); counting per contiguous key run replaces a tuple build and
        # a dict update per traverser with one of each per run.
        last_q = last_s = -1
        key = None
        kcount = 0
        for trav in travs:
            append(trav)
            if trav.query_id != last_q or trav.stage != last_s:
                if kcount:
                    counts[key] = counts.get(key, 0) + kcount
                last_q = trav.query_id
                last_s = trav.stage
                key = (last_q, last_s)
                kcount = 1
            else:
                kcount += 1
        if kcount:
            counts[key] = counts.get(key, 0) + kcount
        depth = len(self.queue)
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        self.wake(now)

    def enqueue_remote(self, travs: List[Traverser], now: float) -> None:
        """Stage credit-gated arrivals in the bounded inbox.

        Stage counts are charged at insertion (not at drain) so idle-flush
        decisions and naive-mode quiescence checks see inboxed traversers
        as local work; the worker transfers them to the run queue — and
        releases their credits — at the start of its next run.
        """
        inbox = self.inbox
        counts = self.stage_counts
        for trav in travs:
            inbox.append(trav)
            key = (trav.query_id, trav.stage)
            counts[key] = counts.get(key, 0) + 1
        depth = len(inbox)
        if depth > self.peak_inbox_depth:
            self.peak_inbox_depth = depth
        self.wake(now)

    def dec_stage_count(self, key: Tuple[int, int], n: int = 1) -> None:
        """Decrement a (query, stage) count, dropping the key at zero."""
        counts = self.stage_counts
        left = counts.get(key, 0) - n
        if left > 0:
            counts[key] = left
        else:
            counts.pop(key, None)

    def drop_query(self, query_id: int) -> None:
        """Purge all stage counts of a finished/aborted query."""
        counts = self.stage_counts
        for key in [k for k in counts if k[0] == query_id]:
            del counts[key]

    def reclaim_query(self, query_id: int) -> Tuple[int, int, int]:
        """Purge a query's queued + inboxed traversers and stage counts.

        The cancellation/teardown primitive: returns ``(weight, n_queue,
        n_inbox)`` where ``weight`` is the summed progression weight of the
        removed traversers (mod 2^64) — the engine reports it back to the
        progress tracker so the stage ledger still closes — and the counts
        let the engine release the inboxed traversers' sender credits.
        """
        weight = 0
        n_queue = 0
        n_inbox = 0
        if self.queue:
            kept = []
            for trav in self.queue:
                if trav.query_id == query_id:
                    weight += trav.weight
                    n_queue += 1
                else:
                    kept.append(trav)
            if n_queue:
                self.queue.clear()
                self.queue.extend(kept)
        if self.inbox:
            kept = []
            for trav in self.inbox:
                if trav.query_id == query_id:
                    weight += trav.weight
                    n_inbox += 1
                else:
                    kept.append(trav)
            if n_inbox:
                self.inbox.clear()
                self.inbox.extend(kept)
        self.drop_query(query_id)
        return weight % GROUP_MODULUS, n_queue, n_inbox

    def purge_query(self, query_id: int) -> int:
        """Remove a query's queued traversers and stage counts.

        Used by crash recovery before a retry so stale traversers of the
        abandoned attempt cannot execute against the fresh one. Returns the
        number of traversers removed. (Cancellation uses
        :meth:`reclaim_query` directly: it additionally needs the purged
        weight and the inbox count for credit release.)
        """
        _weight, n_queue, n_inbox = self.reclaim_query(query_id)
        return n_queue + n_inbox

    def wake(self, now: float) -> None:
        """Wake one idle, alive worker (the least busy) to process the queue."""
        if not self.queue and not self.inbox:
            return
        idle = [w for w in self.workers if not w.scheduled and w.alive]
        if idle:
            min(idle, key=lambda w: w.busy_until).wake(now)


class Worker:
    """A single simulated CPU core executing traversers for one runtime."""

    def __init__(
        self,
        engine: "AsyncPSTMEngine",
        wid: int,
        node: int,
        runtime: PartitionRuntime,
    ) -> None:
        self.engine = engine
        self.wid = wid
        self.node = node
        self.runtime = runtime
        runtime.workers.append(self)
        #: execution strategy for the drain loop's middle (scalar/batched)
        self.kernel = kernel_for(engine.config)
        self.busy_until = 0.0
        self.scheduled = False
        #: False while a crash/stall fault holds this worker down
        self.alive = True
        #: compute slowdown multiplier (straggler injection; 1.0 = healthy)
        self.slowdown = 1.0
        #: total simulated CPU time this worker has burned (utilization)
        self.busy_total = 0.0
        # tier-1 buffers: destination node -> control messages / traversers
        self._buffers: Dict[int, List[Message]] = {}
        # traverser buffer entries are (target pid, traverser, wire size)
        self._trav_buffers: Dict[int, List[Tuple[int, Traverser, int]]] = {}
        self._buffer_bytes: Dict[int, int] = {}
        # weight coalescing accumulators per (query, stage)
        self._accums: Dict[Tuple[int, int], WeightAccumulator] = {}
        #: live-traffic observation hook for the placement miner
        #: (repro.runtime.migrate.TrafficMiner); None — one attribute read
        #: per flush — unless a miner is attached.
        self.miner = None

    # -- scheduling --------------------------------------------------------

    def wake(self, now: float) -> None:
        """Schedule a run at max(now, busy_until) if idle."""
        if self.scheduled or not self.alive:
            return
        self.scheduled = True
        self.engine.clock.schedule_at(max(now, self.busy_until), self._run)

    def add_setup_cost(self, now: float, cost_us: float) -> None:
        """Charge per-query setup work (operator instantiation, Banyan/GAIA)."""
        self.busy_until = max(self.busy_until, now) + cost_us

    # -- fault injection ----------------------------------------------------

    def crash(self) -> None:
        """Kill this worker: its core-resident state is lost.

        Queued traversers (when this is the runtime's only worker, i.e. the
        shared-nothing configuration), tier-1 message buffers, and weight
        accumulators all vanish — along with the progression weight they
        carried, which is exactly what the progress tracker's stuck ledger
        later detects. Partition memos are invalidated by the engine's
        crash handler, which also force-retries every affected query.
        """
        trace = self.engine.trace
        if trace is not None:
            # Tally the progression weight about to vanish, per (query,
            # stage), before the buffers are cleared. Accumulators are not
            # tallied: their weight already left "active" at execution time
            # and the recovery path drops the whole ledger anyway.
            losses: Dict[Tuple[int, int], List[int]] = {}
            for pairs in self._trav_buffers.values():
                for _pid, trav, _size in pairs:
                    entry = losses.setdefault(
                        (trav.query_id, trav.stage), [0, 0]
                    )
                    entry[0] = (entry[0] + trav.weight) % GROUP_MODULUS
                    entry[1] += 1
            if len(self.runtime.workers) == 1:
                for source in (self.runtime.queue, self.runtime.inbox):
                    for trav in source:
                        entry = losses.setdefault(
                            (trav.query_id, trav.stage), [0, 0]
                        )
                        entry[0] = (entry[0] + trav.weight) % GROUP_MODULUS
                        entry[1] += 1
            for (qid, stage), (weight, count) in losses.items():
                trace.emit(CRASH_LOSS, qid, stage=stage, wid=self.wid,
                           weight=weight, count=count)
        self.alive = False
        self.scheduled = False
        self._buffers.clear()
        self._trav_buffers.clear()
        self._buffer_bytes.clear()
        self._accums.clear()
        if len(self.runtime.workers) == 1:
            self.runtime.queue.clear()
            self.runtime.stage_counts.clear()
            dropped = len(self.runtime.inbox)
            if dropped:
                # Inboxed traversers die with the worker, but their sender
                # credits must not: a crash that swallowed credits would
                # deadlock every sender still throttled on this partition.
                self.runtime.inbox.clear()
                gates = self.engine.delivery.gates
                if gates is not None:
                    gates[self.runtime.pid].release(dropped)

    def stall(self) -> None:
        """Freeze this worker without losing state (GC pause, sched hiccup).

        Queued work and buffers survive; :meth:`recover` resumes exactly
        where the worker stopped, so no progression weight is lost.
        """
        self.alive = False
        self.scheduled = False

    def recover(self, now: float) -> None:
        """Bring a crashed/stalled worker back up and resume its queue."""
        self.alive = True
        self.busy_until = max(self.busy_until, now)
        self.runtime.wake(now)

    def resident_queries(self) -> Set[int]:
        """Ids of every query with state resident on this worker or its
        runtime: queued or inboxed traversers, tier-1 buffered traversers
        and control messages, and coalescing accumulators. Crash handling
        recovers exactly this set (plus the partition's memo holders) —
        any such query loses progression weight or buffered results when
        the worker dies."""
        affected: Set[int] = set()
        runtime = self.runtime
        affected.update(t.query_id for t in runtime.queue)
        affected.update(t.query_id for t in runtime.inbox)
        affected.update(key[0] for key in self._accums)
        for pairs in self._trav_buffers.values():
            affected.update(t.query_id for _pid, t, _size in pairs)
        for msgs in self._buffers.values():
            affected.update(m.query_id for m in msgs if m.query_id >= 0)
        return affected

    # -- cancellation -------------------------------------------------------

    def reclaim_query(self, query_id: int) -> Tuple[int, int]:
        """Discard a cancelled query's buffered traversers and pending
        coalesced weight.

        Returns ``(weight, n_traversers)``: the progression weight removed
        from this worker (buffered children that will now never be sent,
        plus finished weight absorbed into accumulators but not yet
        flushed), which the engine reports back to the tracker so the
        cancelled stage's ledger still reaches the root weight.
        """
        weight = 0
        n = 0
        for dst_node, pairs in self._trav_buffers.items():
            if not pairs:
                continue
            kept = []
            removed_bytes = 0
            for pid, trav, size in pairs:
                if trav.query_id == query_id:
                    weight += trav.weight
                    n += 1
                    removed_bytes += size
                else:
                    kept.append((pid, trav, size))
            if removed_bytes:
                self._trav_buffers[dst_node] = kept
                left = self._buffer_bytes.get(dst_node, 0) - removed_bytes
                self._buffer_bytes[dst_node] = max(0, left)
        trace = self.engine.trace
        for key in [k for k in self._accums if k[0] == query_id]:
            pending = self._accums.pop(key).flush()
            if pending is not None:
                weight += pending
                if trace is not None:
                    # The auditor moves this weight back from "finished" to
                    # "active": it was absorbed at execution time but never
                    # reported, and the combined reclaim below re-reports it.
                    trace.emit(ACCUM_RECLAIM, query_id, stage=key[1],
                               wid=self.wid,
                               weight=pending % GROUP_MODULUS)
        return weight % GROUP_MODULUS, n

    # -- main loop -----------------------------------------------------------

    def _run(self) -> None:
        """One scheduled drain: prologue, kernel middle, epilogue.

        Everything execution-strategy-independent lives here — crash-race
        drop, inbox drain with exactly-once credit release, the budget
        sweep over touched queries, the idle coalesced-weight flush, the
        straggler slowdown, and the reschedule-or-flush-all decision. The
        strategy-specific middle (pop/execute/route/buffer) is delegated to
        :attr:`kernel`, so both kernels share one copy of every hook.
        """
        if not self.alive:
            # A run scheduled before the fault fired; drop it. recover()
            # re-wakes the runtime.
            self.scheduled = False
            return
        self.scheduled = False
        engine = self.engine
        t = engine.clock.now
        runtime = self.runtime
        queue = runtime.queue

        inbox = runtime.inbox
        if inbox:
            # Drain credit-gated arrivals into the run queue, releasing
            # their senders' credits at processing pace (backpressure).
            moved = min(len(inbox), engine.config.batch_size)
            for _ in range(moved):
                queue.append(inbox.popleft())
            gates = engine.delivery.gates
            if gates is not None:
                gates[runtime.pid].release(moved)

        budgets_armed = engine._budgets_armed
        touched = set() if budgets_armed else None

        cpu = self.kernel.drain(self, t, touched)

        if budgets_armed and touched:
            check_budgets_of(engine, touched)

        # End of batch: flush coalesced weights of stages with no local work
        # left (the paper's "flush before the thread sleeps" rule, refined to
        # per-stage idleness so one busy query cannot stall another's
        # termination).
        if engine.config.progress_mode.coalesced:
            cpu += self._flush_idle_accums(t + cpu)

        cpu *= self.slowdown
        self.busy_total += cpu
        if queue or inbox:
            self.busy_until = t + cpu
            self.scheduled = True
            engine.clock.schedule_at(self.busy_until, self._run)
        else:
            # Idle: flush every buffer (tier-1 idle rule).
            cpu += self._flush_all(t + cpu)
            self.busy_until = t + cpu

    # -- buffering -------------------------------------------------------------

    def _accum(self, query_id: int, stage: int) -> WeightAccumulator:
        key = (query_id, stage)
        accum = self._accums.get(key)
        if accum is None:
            accum = WeightAccumulator()
            self._accums[key] = accum
        return accum

    def _buffer_traverser(
        self, child: Traverser, pid: int, dst_node: int, when: float
    ) -> float:
        """Stash a remote-bound traverser in the tier-1 buffer.

        Traversers are batched as ``(pid, traverser)`` pairs and packed into
        per-destination-partition batch messages at flush time, so the
        per-traverser bookkeeping stays off the hot path.
        """
        delivery = self.engine.delivery
        if delivery.track_inflight:
            delivery.note_outbound(child.query_id)
        buf = self._trav_buffers.setdefault(dst_node, [])
        size = child.estimated_size_bytes()
        buf.append((pid, child, size))
        self._buffer_bytes[dst_node] = self._buffer_bytes.get(dst_node, 0) + size
        if self._buffer_bytes[dst_node] >= self.engine.flush_threshold_bytes:
            return self._flush(dst_node, when)
        return 0.0

    def _buffer_message(self, msg: Message, dst_node: int, when: float) -> float:
        """Stash a control message (progress report) in the tier-1 buffer.

        Returns the CPU time spent (flush syscalls, if any).
        """
        buf = self._buffers.setdefault(dst_node, [])
        buf.append(msg)
        self._buffer_bytes[dst_node] = (
            self._buffer_bytes.get(dst_node, 0) + msg.size_bytes
        )
        if self._buffer_bytes[dst_node] >= self.engine.flush_threshold_bytes:
            return self._flush(dst_node, when)
        return 0.0

    def _flush(self, dst_node: int, when: float) -> float:
        msgs = self._buffers.get(dst_node) or []
        pairs = self._trav_buffers.get(dst_node) or []
        if not msgs and not pairs:
            return 0.0
        if pairs and self.miner is not None:
            self.miner.note_pairs(self.runtime.pid, pairs)
        if msgs:
            self._buffers[dst_node] = []
        gates = self.engine.delivery.gates
        gated: List[Tuple[int, List[Traverser], int]] = []
        if pairs:
            self._trav_buffers[dst_node] = []
            if gates is None:
                # Pack traversers into one batch message per target partition.
                by_pid: Dict[int, List[Traverser]] = {}
                sizes: Dict[int, int] = {}
                for pid, child, size in pairs:
                    lst = by_pid.get(pid)
                    if lst is None:
                        by_pid[pid] = [child]
                        sizes[pid] = size
                    else:
                        lst.append(child)
                        sizes[pid] += size
                msgs = list(msgs)
                for pid, travs in by_pid.items():
                    msgs.append(
                        Message(
                            MsgKind.TRAVERSER, pid, travs, sizes[pid], travs[0].query_id
                        )
                    )
            else:
                # Credit-gated path: same per-partition packing, but each
                # batch is capped at the gate's capacity (so a single send
                # is always satisfiable) and submitted through the gate,
                # which defers it when the receiver's inbox is full.
                by_pid_g: Dict[int, List[Tuple[Traverser, int]]] = {}
                for pid, child, size in pairs:
                    by_pid_g.setdefault(pid, []).append((child, size))
                for pid, entries in by_pid_g.items():
                    cap = gates[pid].capacity
                    for i in range(0, len(entries), cap):
                        chunk = entries[i:i + cap]
                        travs = [child for child, _size in chunk]
                        total = sum(size for _child, size in chunk)
                        gated.append((pid, travs, total))
        self._buffer_bytes[dst_node] = 0
        self.engine.metrics.flushes += 1
        cm = self.engine.cost
        if dst_node == self.node or self.engine.network.node_combining:
            cost = cm.combiner_handoff_us
        else:
            cost = cm.syscall_us
        if msgs:
            self.engine.network.send(self.node, dst_node, msgs, when)
        for pid, travs, total in gated:
            msg = Message(MsgKind.TRAVERSER, pid, travs, total, travs[0].query_id)
            send = (
                lambda at, m=msg, dn=dst_node:
                self.engine.network.send(self.node, dn, [m], at)
            )
            gates[pid].submit(len(travs), send, when)
        return cost * cm.cpu_scale

    def drop_query(self, query_id: int) -> None:
        """Drop a finished query's flushed-out weight accumulators so the
        per-drain idle sweep stops iterating dead entries. Only empty
        ones: cancellation harvests pending weight via
        :meth:`reclaim_query` instead."""
        accums = self._accums
        for key in [
            k for k, a in accums.items()
            if k[0] == query_id and a.pending_count == 0
        ]:
            del accums[key]

    def _flush_idle_accums(self, when: float) -> float:
        """Flush finished-weight accumulators whose stage has drained here."""
        if not self._accums:
            return 0.0
        cost = 0.0
        trace = self.engine.trace
        for (query_id, stage), accum in self._accums.items():
            if accum.pending_count == 0:
                continue
            if self.runtime.stage_counts.get((query_id, stage), 0) > 0:
                continue
            count = accum.pending_count
            combined = accum.flush()
            if combined is None:
                continue
            if trace is not None:
                trace.emit(WEIGHT_FLUSH, query_id, stage=stage, wid=self.wid,
                           weight=combined % GROUP_MODULUS, count=count)
            cost += self._buffer_message(
                Message(
                    MsgKind.PROGRESS,
                    TRACKER_DST,
                    ("weight", query_id, stage, combined),
                    PROGRESS_MSG_BYTES,
                    query_id,
                ),
                self.engine.tracker_node,
                when + cost,
            )
        return cost

    def _flush_all(self, when: float) -> float:
        cost = 0.0
        bufs = self._buffers
        tbufs = self._trav_buffers
        for dst_node in set(bufs) | set(tbufs):
            # Empty flushes are no-ops; skip the call (buffers persist
            # across drains, so most retained keys are usually empty).
            if bufs.get(dst_node) or tbufs.get(dst_node):
                cost += self._flush(dst_node, when + cost)
        return cost
