"""Reference executor: run a plan to completion, no simulation.

:class:`LocalExecutor` interprets a physical plan over a partitioned graph
with a plain work queue — single Python thread, no clock, no network. It
exercises the full PSTM core (machine, memos, weights, stages) and serves as

* the correctness oracle the simulated engines are tested against, and
* the cheapest way to just *run a query* from the public API.

Because it shares every operator and the weight ledger with the distributed
engines, a green reference run also certifies the termination-detection
invariant: the query finishes exactly when the finished weight reaches 1.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Dict, List, Optional

from repro.core.machine import PSTMMachine, resolve_partition
from repro.core.memo import MemoStore
from repro.core.progress import ProgressMode, ProgressTracker
from repro.core.steps import FixedVertexSource, StepContext
from repro.core.subquery import StageCursor, gather_partials
from repro.core.traverser import Traverser, make_root
from repro.core.weight import ROOT_WEIGHT, split_weight
from repro.errors import ExecutionError
from repro.graph.partition import PartitionedGraph
from repro.query.plan import PhysicalPlan


class LocalExecutor:
    """Synchronous single-process plan interpreter."""

    def __init__(self, graph: PartitionedGraph, seed: int = 0) -> None:
        self.graph = graph
        self.memo_stores = [MemoStore(p) for p in range(graph.num_partitions)]
        self._seed = seed
        self._next_query_id = 0
        # Statistics of the last run (useful for tests and examples).
        self.last_steps_executed = 0
        self.last_traversers_spawned = 0

    def run(self, plan: PhysicalPlan, params: Optional[Dict[str, Any]] = None) -> List[Any]:
        """Execute ``plan`` with ``params`` and return the result rows."""
        params = params or {}
        query_id = self._next_query_id
        self._next_query_id += 1
        rng = random.Random((self._seed << 20) ^ query_id)
        machine = PSTMMachine(plan, self.graph.partitioner)
        cursor = StageCursor(plan, query_id)
        completed: List[int] = []
        tracker = ProgressTracker(
            ProgressMode.WEIGHTED_IMMEDIATE,
            lambda qid, stage: completed.append(stage),
        )
        self.last_steps_executed = 0
        self.last_traversers_spawned = 0

        queue: deque = deque(self._stage0_seeds(plan, params, query_id, rng))
        tracker.open_stage(query_id, 0)
        self.last_traversers_spawned += len(queue)
        contexts = self._contexts(plan, params, query_id)

        while True:
            while queue:
                trav = queue.popleft()
                pid = resolve_partition(trav, self.graph.partitioner, machine.route(trav))
                result = machine.execute(contexts[pid], trav, rng)
                self.last_steps_executed += 1
                self.last_traversers_spawned += len(result.children)
                for child, _target in result.children:
                    queue.append(child)
                if result.finished_weight:
                    tracker.report_weight(query_id, trav.stage, result.finished_weight)
            # The queue drained: the current stage must have terminated.
            if not completed or completed[-1] != cursor.current:
                raise ExecutionError(
                    f"queue drained but stage {cursor.current} not terminated "
                    "(weight invariant violated)"
                )
            partials = gather_partials(plan, cursor.current, query_id, self.memo_stores)
            seeds = cursor.complete_stage(partials, rng)
            if cursor.finished:
                break
            tracker.open_stage(query_id, cursor.current)
            if seeds:
                queue.extend(seeds)
                self.last_traversers_spawned += len(seeds)
            else:
                # Next stage has no input: it terminates vacuously.
                completed.append(cursor.current)

        for store in self.memo_stores:
            store.clear_query(query_id)
        tracker.close_query(query_id)
        assert cursor.results is not None
        return cursor.results

    # -- helpers -----------------------------------------------------------

    def _contexts(
        self, plan: PhysicalPlan, params: Dict[str, Any], query_id: int
    ) -> List[StepContext]:
        return [
            StepContext(
                self.graph.stores[p],
                self.memo_stores[p].for_query(query_id),
                self.graph.partitioner,
                params,
            )
            for p in range(self.graph.num_partitions)
        ]

    def _stage0_seeds(
        self,
        plan: PhysicalPlan,
        params: Dict[str, Any],
        query_id: int,
        rng: random.Random,
    ) -> List[Traverser]:
        """Seed traversers for every stage-0 source, weights summing to 1."""
        specs: List[Traverser] = []
        for source in plan.source_ops():
            if source.broadcast:
                for pid in range(self.graph.num_partitions):
                    specs.append(
                        make_root(query_id, -pid - 1, source.idx, plan.payload_width, 0)
                    )
            else:
                assert isinstance(source, FixedVertexSource)
                vertex = source.start_vertex(params)
                specs.append(
                    make_root(query_id, vertex, source.idx, plan.payload_width, 0)
                )
        weights = split_weight(ROOT_WEIGHT, len(specs), rng)
        return [t.evolve(weight=w) for t, w in zip(specs, weights)]
