"""Query-scoped tracing and the trace-driven weight-ledger auditor.

The observability plane (docs/OBSERVABILITY.md). A :class:`TraceRecorder`
is attached to the engine only when ``EngineConfig.trace`` is set; every
hook in the runtime guards on ``trace is not None``, so the disabled mode
allocates nothing on the hot path. Events are plain timestamped records —
lifecycle transitions, kernel executions, weight reclamations, tracker
reports, credit movements, network sends/retransmits, memo lifecycle —
appended in simulated-time order (the simulator is single-threaded, so the
event list is totally ordered for free).

Three consumers:

* :meth:`TraceRecorder.dump_jsonl` — one flat JSON object per line, for
  ``jq``-style offline analysis;
* :meth:`TraceRecorder.to_chrome_trace` — ``chrome://tracing`` / Perfetto
  JSON, kernel executions as duration spans keyed by partition (pid) and
  worker (tid);
* :class:`WeightLedgerAuditor` — replays a trace and re-derives the
  Theorem-1 progression-weight ledger *independently of the tracker*: for
  every ``(query, stage)`` it folds exec / reclaim / crash events into
  ``active + finished + reclaimed + lost ≡ 1 (mod 2^64)`` and, at stage
  close, checks both that no active weight survived and that the weight
  the tracker actually received (progress reports + reclaim reports) sums
  to the root weight.

This module is an observation *leaf*: it may not import the engine, the
delivery plane, or any other runtime layer (enforced by
``tools/check_layering.py``); hooks hand it plain values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.core.weight import GROUP_MODULUS, ROOT_WEIGHT

if TYPE_CHECKING:  # typing only; trace stays below every runtime layer
    from repro.runtime.metrics import RunMetrics
    from repro.runtime.simclock import SimClock

# -- event kinds -------------------------------------------------------------
# Stable string constants: exporters and the auditor match on these, and
# they appear verbatim in JSONL dumps (docs/OBSERVABILITY.md has the full
# taxonomy with per-kind payload fields).

RUN_CONFIG = "run_config"          # engine construction: mode/kernel/cluster
LIFECYCLE = "lifecycle"            # state-machine edge: src, dst, reason
STAGE_OPEN = "stage_open"          # ledger opened: stage
SEED_DISPATCH = "seed_dispatch"    # stage seeds sent: stage, n, weight
STAGE_CLOSE = "stage_close"        # stage, reason: terminated|cancelled|cancel_forced
QUERY_CLOSE = "query_close"        # reason: teardown|recover|restore|pause
CHECKPOINT = "checkpoint"          # stage-boundary snapshot: stage, n_seeds,
#                                    partitions, records
RESTORE = "restore"                # resumed from a checkpoint: stage,
#                                    restored_from (old attempt id), n_seeds
PREEMPT = "preempt"                # preempt requested: stage, reason
PAUSE = "pause"                    # evicted at a certified boundary: stage
#                                    (the resume point), n_seeds, records
RESUME = "resume"                  # paused query re-admitted: stage,
#                                    resumed_from (paused attempt id),
#                                    n_seeds, wait_us
EXEC = "exec"                      # kernel run: pid, wid, stage, op_idx, n,
#                                    spawned, w_in, w_fin[, w_out], cpu
WEIGHT_FLUSH = "weight_flush"      # coalesced accumulator flushed: wid, stage, weight
ACCUM_RECLAIM = "accum_reclaim"    # unflushed accumulator drained: wid, stage, weight
RECLAIM = "reclaim"                # delivery-plane reclaim: stage, weight, count, reported
CRASH_LOSS = "crash_loss"          # weight destroyed by a crash: wid, stage, weight, count
TRACKER_REPORT = "tracker_report"  # progress message at tracker: stage, tag, value
MEMO_ATTACH = "memo_attach"        # per-partition memo view created: pid
MEMO_CLEAR = "memo_clear"          # memos invalidated: pid (-1 = all), site
MSG_SEND = "msg_send"              # network send: src, dst, n, bytes
MSG_DELIVER = "msg_deliver"        # payload handed to delivery: n
MSG_RETRANSMIT = "msg_retransmit"  # RTO fired: src, dst, seq, attempts
MSG_FAULT = "msg_fault"            # injected packet fate: fault
CREDIT_ACQUIRE = "credit_acquire"  # inbox credits taken: pid, n
CREDIT_RELEASE = "credit_release"  # inbox credits returned: pid, n
CREDIT_STALL = "credit_stall"      # sender parked on a full inbox: pid, n
WORKER_FAULT = "worker_fault"      # injected worker fault: wid, kind
MIGRATE = "migrate"                # placement flip: vertices, pairs, bytes,
#                                    swept (traversers re-routed at the flip)
SNAPSHOT_PIN = "snapshot_pin"      # query pinned to a version cut: ts (the
#                                    node-cached LCT at admission)
TXN_BEGIN = "txn_begin"            # write txn began: txn, read_ts
TXN_COMMIT = "txn_commit"          # write txn committed: txn, commit_ts, ops
TXN_ABORT = "txn_abort"            # write txn aborted: txn, reason
#                                    (lock conflict or torn_commit)
VERSION_REPLAY = "version_replay"  # crash-recovery version scan: lct,
#                                    partitions, discarded

#: close reasons that certify a ledger actually closed (auditor asserts)
_CLOSED_REASONS = ("terminated", "cancelled")


class TraceEvent:
    """One structured trace record: ``ts`` (simulated µs), ``kind``,
    ``query_id`` (-1 when not attributable to one query), payload dict."""

    __slots__ = ("ts", "kind", "query_id", "data")

    def __init__(self, ts: float, kind: str, query_id: int,
                 data: Dict[str, Any]) -> None:
        self.ts = ts
        self.kind = kind
        self.query_id = query_id
        self.data = data

    def as_dict(self) -> Dict[str, Any]:
        """Flatten to one JSON-ready dict (payload keys promoted to top
        level; the JSONL exporter writes exactly this)."""
        out = {"ts": self.ts, "kind": self.kind, "query_id": self.query_id}
        out.update(self.data)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.ts:.1f}, {self.kind}, q{self.query_id}, {self.data})"


#: an event as recorded, or as re-read from a JSONL dump
TraceLike = Union[TraceEvent, Dict[str, Any]]


class TraceRecorder:
    """Collects :class:`TraceEvent` records in simulated-time order.

    Constructed once per engine; ``run_info`` keyword arguments become the
    leading :data:`RUN_CONFIG` event (progress mode, kernel, cluster shape)
    so a dumped trace is self-describing.
    """

    def __init__(self, clock: "SimClock", **run_info: Any) -> None:
        self._clock = clock
        self.events: List[TraceEvent] = []
        if run_info:
            self.emit(RUN_CONFIG, -1, **run_info)

    # -- recording ----------------------------------------------------------

    def emit(self, kind: str, query_id: int, **data: Any) -> None:
        """Append one event stamped with the current simulated time."""
        self.events.append(TraceEvent(self._clock.now, kind, query_id, data))

    # -- access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def by_kind(self, kind: str) -> List[TraceEvent]:
        """Every recorded event of one kind, in simulated-time order."""
        return [ev for ev in self.events if ev.kind == kind]

    def for_query(self, query_id: int) -> List[TraceEvent]:
        """Every event attributed to one query, in simulated-time order."""
        return [ev for ev in self.events if ev.query_id == query_id]

    # -- exporters ----------------------------------------------------------

    def dump_jsonl(self, path: str,
                   metrics: Optional["RunMetrics"] = None) -> int:
        """Write one flat JSON object per event; when ``metrics`` is given a
        final ``{"kind": "run_metrics", ...}`` record carries the engine's
        counter snapshot. Returns the number of records written."""
        n = 0
        with open(path, "w") as fh:
            for ev in self.events:
                fh.write(json.dumps(ev.as_dict()))
                fh.write("\n")
                n += 1
            if metrics is not None:
                fh.write(json.dumps(
                    {"kind": "run_metrics", **metrics.snapshot()}))
                fh.write("\n")
                n += 1
        return n

    def to_chrome_trace(self) -> Dict[str, Any]:
        """``chrome://tracing`` JSON: kernel executions become complete
        ("X") duration spans on a (partition, worker) track; everything
        else becomes an instant event. Timestamps are simulated µs."""
        out: List[Dict[str, Any]] = []
        for ev in self.events:
            if ev.kind == EXEC:
                out.append({
                    "name": f"q{ev.query_id} op{ev.data.get('op_idx', '?')}",
                    "cat": "exec",
                    "ph": "X",
                    "ts": ev.ts,
                    "dur": ev.data.get("cpu", 0.0),
                    "pid": ev.data.get("pid", 0),
                    "tid": ev.data.get("wid", 0),
                    "args": ev.as_dict(),
                })
            else:
                out.append({
                    "name": ev.kind,
                    "cat": ev.kind,
                    "ph": "i",
                    "s": "g",
                    "ts": ev.ts,
                    "pid": ev.data.get("pid", 0),
                    "tid": ev.data.get("wid", 0),
                    "args": ev.as_dict(),
                })
        return {"traceEvents": out, "displayTimeUnit": "ms"}

    def summary(self) -> Dict[int, Dict[str, Any]]:
        """Aggregate per-query view: event counts by kind plus the headline
        execution numbers (the per-query ``RunMetrics`` extension surfaced
        by ``python -m repro trace``)."""
        out: Dict[int, Dict[str, Any]] = {}
        for ev in self.events:
            row = out.setdefault(ev.query_id, {
                "events": 0, "kinds": {}, "traversers": 0, "spawned": 0,
                "reclaimed_count": 0, "cpu_us": 0.0,
            })
            row["events"] += 1
            row["kinds"][ev.kind] = row["kinds"].get(ev.kind, 0) + 1
            if ev.kind == EXEC:
                row["traversers"] += ev.data.get("n", 0)
                row["spawned"] += ev.data.get("spawned", 0)
                row["cpu_us"] += ev.data.get("cpu", 0.0)
            elif ev.kind == RECLAIM:
                row["reclaimed_count"] += ev.data.get("count", 0)
        return out


# -- the auditor -------------------------------------------------------------


class _StageLedger:
    """Re-derived Theorem-1 ledger for one (query, stage); all fields are
    group elements mod 2^64. ``tracker_sum`` independently accumulates what
    the *tracker* saw (progress reports + reclaim reports)."""

    __slots__ = ("active", "finished", "reclaimed", "lost", "tracker_sum")

    def __init__(self) -> None:
        self.active = ROOT_WEIGHT
        self.finished = 0
        self.reclaimed = 0
        self.lost = 0
        self.tracker_sum = 0


@dataclass
class AuditReport:
    """Outcome of one :meth:`WeightLedgerAuditor.audit` pass."""

    violations: List[str] = field(default_factory=list)
    events: int = 0
    checks: int = 0
    stages_opened: int = 0
    stages_closed: int = 0      # closed with the terminal invariants asserted
    stages_dropped: int = 0     # torn down without a closed ledger (crash paths)
    migrations: int = 0         # placement flips replayed (ledger re-checked)
    txn_commits: int = 0        # writer commits replayed (ledger re-checked)
    version_replays: int = 0    # crash-recovery version scans replayed

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        head = "OK" if self.ok else f"{len(self.violations)} VIOLATION(S)"
        return (f"audit {head}: {self.events} events, {self.checks} invariant "
                f"checks, stages opened={self.stages_opened} "
                f"closed={self.stages_closed} dropped={self.stages_dropped}")


def _normalize(ev: TraceLike) -> Tuple[str, int, Dict[str, Any]]:
    if isinstance(ev, dict):
        return ev["kind"], ev.get("query_id", -1), ev
    return ev.kind, ev.query_id, ev.data


class WeightLedgerAuditor:
    """Replays a trace and re-derives the progression-weight ledger.

    Accepts :class:`TraceEvent` objects (``recorder.events``) or plain
    dicts (a re-read JSONL dump). The audit is independent of the engine's
    own :class:`~repro.core.progress.ProgressTracker`: it reconstructs each
    stage's ledger purely from kernel exec events, reclaim events and crash
    losses, and separately sums what the tracker was told, then checks

    * ``active + finished + reclaimed + lost ≡ ROOT_WEIGHT`` after every
      ledger-touching event (Theorem 1, extended with the reclamation and
      fault terms of PR2/PR3);
    * scalar exec events conserve weight exactly: ``w_in = w_out + w_fin``;
    * each stage's seed weights sum to the root weight;
    * at ``stage_close(terminated|cancelled)``: no active weight survives
      *and* the tracker independently received exactly the root weight;
    * no exec on a never-opened (or already-closed) stage, no reopen, and
      no stage left open at end of trace;
    * transaction-plane events are ledger-neutral: every open ledger still
      conserves the root weight across a writer commit and across a
      crash-recovery version scan (Theorem 1 is untouched by interleaved
      writers), and commit timestamps are strictly monotonic;
    * snapshot isolation: a query pins at most the last committed
      timestamp (``snapshot_pin.ts`` never exceeds the LCT implied by the
      ``txn_commit`` prefix), and no exec event cites a served version
      (``version_ts``) newer than its query's pinned snapshot.

    Naive-central traces carry no weight ledger and are rejected.
    """

    def __init__(self, events: Iterable[TraceLike]) -> None:
        self._events = list(events)

    def audit(self) -> AuditReport:
        """Replay the trace once and return the :class:`AuditReport`."""
        rep = AuditReport()
        stages: Dict[Tuple[int, int], _StageLedger] = {}
        pins: Dict[int, int] = {}  # query -> pinned snapshot timestamp
        lct_seen = 0               # LCT implied by the txn_commit prefix
        M = GROUP_MODULUS

        def violate(i: int, msg: str) -> None:
            rep.violations.append(f"event {i}: {msg}")

        def check(i: int, key: Tuple[int, int], st: _StageLedger) -> None:
            rep.checks += 1
            total = (st.active + st.finished + st.reclaimed + st.lost) % M
            if total != ROOT_WEIGHT % M:
                violate(i, f"stage {key}: active+finished+reclaimed+lost "
                           f"= {total} != {ROOT_WEIGHT} (mod 2^64)")

        for i, raw in enumerate(self._events):
            kind, qid, data = _normalize(raw)
            rep.events += 1

            if kind == RUN_CONFIG:
                if str(data.get("mode", "")).startswith("naive"):
                    raise ValueError(
                        "naive-central traces carry no weight ledger; "
                        "audit requires a weighted progress mode")

            elif kind == STAGE_OPEN:
                key = (qid, data["stage"])
                if key in stages:
                    violate(i, f"stage {key} opened twice")
                stages[key] = _StageLedger()
                rep.stages_opened += 1

            elif kind == SEED_DISPATCH:
                if data["weight"] % M != ROOT_WEIGHT % M:
                    violate(i, f"stage ({qid}, {data['stage']}) seeds carry "
                               f"weight {data['weight'] % M}, not the root "
                               f"weight {ROOT_WEIGHT}")

            elif kind == EXEC:
                key = (qid, data["stage"])
                st = stages.get(key)
                if st is None:
                    violate(i, f"exec on unopened/closed stage {key}")
                    continue
                w_fin = data["w_fin"] % M
                st.active = (st.active - w_fin) % M
                st.finished = (st.finished + w_fin) % M
                if "w_out" in data and (
                        (data["w_out"] + w_fin - data["w_in"]) % M):
                    violate(i, f"stage {key}: split does not conserve "
                               f"weight (w_in={data['w_in'] % M}, "
                               f"w_out={data['w_out'] % M}, w_fin={w_fin})")
                if "version_ts" in data:
                    pin = pins.get(qid)
                    if pin is not None and data["version_ts"] > pin:
                        violate(i, f"query {qid} exec cites version "
                                   f"{data['version_ts']} newer than its "
                                   f"pinned snapshot {pin}")
                check(i, key, st)

            elif kind == ACCUM_RECLAIM:
                # Finished weight drained from an unflushed coalescing
                # accumulator: it never reached the tracker, and the worker
                # purge re-reports it through the reclaim funnel — move it
                # back to active so the reclaim event below balances.
                key = (qid, data["stage"])
                st = stages.get(key)
                if st is not None:
                    w = data["weight"] % M
                    st.finished = (st.finished - w) % M
                    st.active = (st.active + w) % M
                    check(i, key, st)

            elif kind == RECLAIM:
                if not data.get("reported", False):
                    continue  # teardown's report-free form: no ledger effect
                key = (qid, data["stage"])
                st = stages.get(key)
                if st is None:
                    continue  # late reclaim; the tracker ignores it too
                w = data["weight"] % M
                st.active = (st.active - w) % M
                st.reclaimed = (st.reclaimed + w) % M
                st.tracker_sum = (st.tracker_sum + w) % M
                check(i, key, st)

            elif kind == CRASH_LOSS:
                key = (qid, data["stage"])
                st = stages.get(key)
                if st is not None:
                    w = data["weight"] % M
                    st.active = (st.active - w) % M
                    st.lost = (st.lost + w) % M
                    check(i, key, st)

            elif kind == TRACKER_REPORT:
                if data.get("tag") != "weight":
                    continue
                st = stages.get((qid, data["stage"]))
                if st is not None:
                    st.tracker_sum = (st.tracker_sum + data["value"]) % M

            elif kind == STAGE_CLOSE:
                key = (qid, data["stage"])
                st = stages.pop(key, None)
                reason = data.get("reason", "")
                if reason in _CLOSED_REASONS:
                    if st is None:
                        violate(i, f"stage {key} closed ({reason}) but was "
                                   f"never opened")
                        continue
                    if st.active % M:
                        violate(i, f"stage {key} closed ({reason}) with "
                                   f"active weight {st.active} outstanding")
                    if st.lost % M:
                        violate(i, f"stage {key} closed ({reason}) despite "
                                   f"crash-lost weight {st.lost}")
                    if st.tracker_sum % M != ROOT_WEIGHT % M:
                        violate(i, f"stage {key} closed ({reason}) but the "
                                   f"tracker received {st.tracker_sum}, not "
                                   f"the root weight {ROOT_WEIGHT}")
                    rep.stages_closed += 1
                else:
                    # cancel_forced: a crash destroyed the cancelling
                    # query's weight; the ledger never closes and the
                    # teardown below accounts for the remains. stage=-1
                    # marks a forced finalize with no ledger attached —
                    # the query's open stages are dropped by its
                    # teardown QUERY_CLOSE, so counting here would
                    # double-book the drop.
                    if st is not None:
                        rep.stages_dropped += 1

            elif kind == MIGRATE:
                # A placement flip is ledger-neutral: swept traversers are
                # re-routed (unreported reclaims), never dropped, so every
                # open ledger must still conserve the root weight across
                # the flip — re-assert all of them at the migration point.
                rep.migrations += 1
                for key, st in stages.items():
                    check(i, key, st)

            elif kind == SNAPSHOT_PIN:
                ts = data["ts"]
                if ts > lct_seen:
                    violate(i, f"query {qid} pinned snapshot {ts} beyond "
                               f"the last committed timestamp {lct_seen} "
                               f"(uncommitted/future version exposed)")
                pins[qid] = ts

            elif kind == TXN_COMMIT:
                commit_ts = data["commit_ts"]
                if commit_ts <= lct_seen:
                    violate(i, f"txn commit_ts {commit_ts} not strictly "
                               f"monotonic (LCT already {lct_seen})")
                lct_seen = commit_ts
                rep.txn_commits += 1
                # Writers are ledger-neutral: a commit moves versions, never
                # traversal weight — re-assert every open ledger at the
                # commit point (Theorem 1 under writer interleavings).
                for key, st in stages.items():
                    check(i, key, st)

            elif kind == VERSION_REPLAY:
                # Recovery's version scan discards torn (post-LCT) versions;
                # it must leave every open traversal ledger untouched.
                rep.version_replays += 1
                for key, st in stages.items():
                    check(i, key, st)

            elif kind == QUERY_CLOSE:
                for key in [k for k in stages if k[0] == qid]:
                    del stages[key]
                    rep.stages_dropped += 1

        for key in sorted(stages):
            rep.violations.append(
                f"end of trace: stage {key} still open (no stage_close or "
                f"query_close event)")
        return rep
