"""BSP execution of PSTM plans — the TigerGraph-like baseline (paper §II-C1).

The bulk-synchronous engine runs the *same compiled plans* as the async
engine, but organizes each query's execution into supersteps:

* within a superstep, every partition drains the query's local work
  (including chained per-vertex operators — realistic engines fuse those);
* traversers that must move to another partition are exchanged in a bulk
  communication phase at the superstep boundary;
* a global barrier separates supersteps: the superstep's duration is the
  *maximum* over partitions of compute time (the straggler effect), plus
  the exchange time and a fixed barrier cost.

Per-traverser dispatch is slightly cheaper than in the async engine (bulk
processing, no weight arithmetic — ``bsp_step_discount``), which is what
lets BSP win the very largest queries in the paper's Fig 9 while losing
badly on small ones, where barrier counts dominate.

**Concurrency model.** Queries do *not* share supersteps: each superstep's
global barrier gives its query exclusive use of the cluster (as in
Pregel-lineage engines, where concurrent queries time-slice at superstep
granularity). Concurrency therefore buys BSP almost no throughput — the
effect behind the paper's Fig 8 throughput gap and TigerGraph's Fig 7
overload at TCR 0.03.

BSP needs no termination detection — a stage is done when the query's
frontier is empty at a barrier — so progression weights are unused (all
traversers carry weight 0).

**Fault injection is out of scope here.** The fault/recovery subsystem
(:mod:`repro.runtime.faults`, docs/FAULTS.md) targets the *asynchronous*
engine, whose weight ledger doubles as a loss detector; BSP's barrier-based
completion has no such ledger, and its bulk exchanges bypass
``Network.send``'s ack/retransmit path. This engine deliberately takes no
``EngineConfig``, so a :class:`~repro.runtime.faults.FaultPlan` cannot be
attached to it.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.memo import MemoStore
from repro.core.steps import FixedVertexSource, StepContext
from repro.core.subquery import GatheredPartial, StageCursor
from repro.core.traverser import Traverser, make_root
from repro.errors import ConfigurationError, ExecutionError
from repro.graph.partition import PartitionedGraph
from repro.query.plan import PhysicalPlan
from repro.runtime.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    HardwareProfile,
    MODERN,
    validate_cluster,
)
from repro.runtime.engine import QueryResult
from repro.runtime.metrics import LatencyRecorder, MsgKind, QueryMetrics, RunMetrics


class _BSPSession:
    """Per-query state: its own frontier and stage cursor."""

    def __init__(
        self,
        engine: "BSPEngine",
        query_id: int,
        plan: PhysicalPlan,
        params: Dict[str, Any],
        submitted_at_us: float,
    ) -> None:
        self.query_id = query_id
        self.plan = plan
        self.params = params
        self.rng = random.Random(query_id)
        self.cursor = StageCursor(plan, query_id)
        self.qmetrics = QueryMetrics(query_id, plan.name, submitted_at_us)
        self._contexts: List[Optional[StepContext]] = [None] * engine.num_partitions
        self.engine = engine
        #: per-partition frontier queues of live traversers
        self.frontier: List[deque] = [deque() for _ in range(engine.num_partitions)]
        self.active = 0

    def context(self, pid: int) -> StepContext:
        ctx = self._contexts[pid]
        if ctx is None:
            ctx = StepContext(
                self.engine.graph.stores[pid],
                self.engine.memo_stores[pid].for_query(self.query_id),
                self.engine.graph.partitioner,
                self.params,
            )
            self._contexts[pid] = ctx
        return ctx

    def push(self, pid: int, trav: Traverser) -> None:
        self.frontier[pid].append(trav)
        self.active += 1

    def results(self) -> List[Any]:
        if self.cursor.results is None:
            raise ExecutionError(f"query {self.query_id} has not finished")
        return self.cursor.results


class BSPEngine:
    """Bulk-synchronous-parallel executor over a partitioned graph."""

    def __init__(
        self,
        graph: PartitionedGraph,
        nodes: int,
        workers_per_node: int,
        hardware: HardwareProfile = MODERN,
        cost_model: Optional[CostModel] = None,
        name: str = "bsp",
        scalar_execution: bool = False,
    ) -> None:
        validate_cluster(nodes, workers_per_node, hardware)
        if graph.num_partitions != nodes * workers_per_node:
            raise ConfigurationError(
                f"{name}: graph has {graph.num_partitions} partitions, need "
                f"{nodes * workers_per_node}"
            )
        self.graph = graph
        self.nodes = nodes
        self.workers_per_node = workers_per_node
        self.name = name
        #: True → per-traverser ``op.apply`` calls (the reference loop the
        #: equivalence suite compares against); False → batched kernels.
        self.scalar_execution = scalar_execution
        self.cost = (cost_model or DEFAULT_COST_MODEL).with_hardware(hardware)
        self.num_partitions = graph.num_partitions
        self.partitions_per_node = self.num_partitions // nodes
        self.memo_stores = [MemoStore(p) for p in range(self.num_partitions)]
        self.metrics = RunMetrics()
        self.time_us = 0.0
        self._next_query_id = 0
        #: per-partition compute slowdown (straggler injection)
        self.partition_slowdown: Dict[int, float] = {}

    def node_of(self, pid: int) -> int:
        """The node hosting a partition."""
        return pid // self.partitions_per_node

    # -- single query ---------------------------------------------------------

    def run(
        self, plan: PhysicalPlan, params: Optional[Dict[str, Any]] = None
    ) -> QueryResult:
        """Run one query to completion; returns rows and simulated latency."""
        session = self.submit(plan, params or {})
        while not session.cursor.finished:
            self.advance(session)
        return QueryResult(
            session.results(), session.qmetrics.latency_us, session.qmetrics
        )

    def submit(self, plan: PhysicalPlan, params: Dict[str, Any]) -> _BSPSession:
        """Create a session and seed its stage-0 frontier."""
        session = _BSPSession(self, self._next_query_id, plan, params, self.time_us)
        self._next_query_id += 1
        self._seed_stage(session)
        return session

    def advance(self, session: _BSPSession) -> None:
        """One exclusive superstep of this query, plus any stage boundary."""
        self._superstep(session)
        self._handle_stage_boundary(session)

    # -- closed-loop concurrency -------------------------------------------------

    def run_closed_loop(
        self,
        make_query: Callable[[int], Tuple[PhysicalPlan, Dict[str, Any]]],
        clients: int,
        total_queries: int,
    ) -> Tuple[float, LatencyRecorder]:
        """Closed-loop throughput under superstep-granularity time slicing."""
        recorder = LatencyRecorder()
        issued = 0
        active: List[_BSPSession] = []
        start = self.time_us

        def issue() -> None:
            nonlocal issued
            if issued >= total_queries:
                return
            plan, params = make_query(issued)
            issued += 1
            active.append(self.submit(plan, params))

        for _ in range(min(clients, total_queries)):
            issue()
        done = 0
        while active:
            # Round-robin: each active query gets one exclusive superstep.
            for session in list(active):
                self.advance(session)
                if session.cursor.finished:
                    active.remove(session)
                    recorder.record(session.qmetrics.latency_us)
                    done += 1
                    issue()
        if done != total_queries:
            raise ExecutionError(f"closed loop finished {done}/{total_queries}")
        elapsed_us = self.time_us - start
        qps = total_queries / (elapsed_us / 1e6) if elapsed_us > 0 else float("inf")
        return qps, recorder

    # -- internals --------------------------------------------------------------------

    def _seed_stage(self, session: _BSPSession) -> None:
        plan = session.plan
        for source in plan.source_ops():
            if source.broadcast:
                for pid in range(self.num_partitions):
                    session.push(
                        pid,
                        make_root(session.query_id, -pid - 1, source.idx,
                                  plan.payload_width, 0),
                    )
            else:
                assert isinstance(source, FixedVertexSource)
                vertex = source.start_vertex(session.params)
                pid = self.graph.partition_of(vertex)
                session.push(
                    pid,
                    make_root(session.query_id, vertex, source.idx,
                              plan.payload_width, 0),
                )

    def _superstep(self, session: _BSPSession) -> None:
        """One superstep: drain local work, bulk-exchange, barrier."""
        outgoing: Dict[Tuple[int, int], int] = {}  # (src_node, dst_node) -> bytes
        remote: List[Tuple[int, Traverser]] = []
        compute_us = [0.0] * self.num_partitions
        drain = (
            self._drain_partition_scalar
            if self.scalar_execution
            else self._drain_partition_batched
        )
        for pid in range(self.num_partitions):
            compute_us[pid] = drain(session, pid, outgoing, remote)

        # Communication phase: one bulk pack per node pair, serialized per
        # source node's NIC; intra-node exchange is shared memory.
        per_node_tx = [0.0] * self.nodes
        for (src, dst), size in outgoing.items():
            if src == dst:
                continue
            per_node_tx[src] += self.cost.tx_time_us(size)
            self.metrics.packets_sent += 1
            self.metrics.bytes_sent += size
        comm_us = max(per_node_tx) if per_node_tx else 0.0
        if any(src == dst for (src, dst) in outgoing):
            comm_us += self.cost.hardware.shm_latency_us

        for pid, factor in self.partition_slowdown.items():
            compute_us[pid] *= factor
        straggler_us = max(compute_us) if compute_us else 0.0
        self.time_us += straggler_us + comm_us + self.cost.bsp_barrier_us
        self.metrics.supersteps += 1
        # Utilization accounting: every partition's worker is held at the
        # barrier until the slowest finishes.
        busy = sum(compute_us)
        self.metrics.bsp_compute_us += busy
        self.metrics.bsp_idle_us += straggler_us * self.num_partitions - busy

        for target, child in remote:
            session.push(target, child)

    def _drain_partition_scalar(
        self,
        session: _BSPSession,
        pid: int,
        outgoing: Dict[Tuple[int, int], int],
        remote: List[Tuple[int, Traverser]],
    ) -> float:
        """Reference per-traverser drain loop for one partition's frontier."""
        queue = session.frontier[pid]
        compute = 0.0
        ctx = None
        discount = self.cost.bsp_step_discount
        partitioner = self.graph.partitioner
        while queue:
            trav = queue.popleft()
            session.active -= 1
            if ctx is None:
                ctx = session.context(pid)
            op = session.plan.ops[trav.op_idx]
            outcome = op.apply(ctx, trav)
            cost = outcome.cost
            compute += self.cost.op_cost_us(cost) * discount
            self.metrics.steps_executed += 1
            self.metrics.edges_scanned += cost.edges
            self.metrics.memo_ops += cost.memo_ops
            session.qmetrics.steps_executed += 1
            for vertex, op_idx, payload, loops in outcome.children:
                child = Traverser(
                    trav.query_id, vertex, op_idx, payload, 0,
                    session.plan.ops[op_idx].stage, loops,
                )
                self.metrics.traversers_spawned += 1
                routed = session.plan.ops[op_idx].routing(partitioner, child)
                target = pid if routed is None else routed
                if target == pid:
                    queue.append(child)
                    session.active += 1
                else:
                    compute += self.cost.serialize_us * discount
                    size = child.estimated_size_bytes()
                    key = (self.node_of(pid), self.node_of(target))
                    outgoing[key] = outgoing.get(key, 0) + size
                    remote.append((target, child))
                    self.metrics.messages[MsgKind.TRAVERSER] += 1
        return compute

    def _drain_partition_batched(
        self,
        session: _BSPSession,
        pid: int,
        outgoing: Dict[Tuple[int, int], int],
        remote: List[Tuple[int, Traverser]],
    ) -> float:
        """Batched drain: homogeneous runs through one kernel call each.

        Same visit order and identical float accumulation sequence as the
        scalar drain (cost and serialize terms are added per traverser /
        per child, in order), so superstep durations are bit-for-bit equal.
        Unlike the async engine, a location-free child stays on its current
        partition — the run executes ops directly rather than through
        :meth:`PSTMMachine.execute_batch`, which resolves to vertex homes.
        """
        queue = session.frontier[pid]
        if not queue:
            return 0.0
        ctx = session.context(pid)
        cost_model = self.cost
        discount = cost_model.bsp_step_discount
        op_cost_fields = cost_model.op_cost_fields_us
        serialize_discounted = cost_model.serialize_us * discount
        partitioner = self.graph.partitioner
        ops = session.plan.ops
        node_of = self.node_of
        src_node = node_of(pid)
        query_id = session.query_id
        compute = 0.0
        steps = 0
        edges_total = 0
        memo_total = 0
        spawned = 0
        trav_msgs = 0
        while queue:
            head = queue.popleft()
            op_idx = head.op_idx
            run = [head]
            while queue and queue[0].op_idx == op_idx:
                run.append(queue.popleft())
            n_run = len(run)
            session.active -= n_run
            outcome = ops[op_idx].apply_batch(ctx, run)
            steps += n_run
            costs = outcome.costs
            rows = outcome.children
            route_cache: Dict[int, Tuple[int, str, Any]] = {}
            for i in range(n_run):
                base, edges, memo_ops, props = costs[i]
                compute += op_cost_fields(base, edges, memo_ops, props) * discount
                edges_total += edges
                memo_total += memo_ops
                for vertex, child_idx, payload, loops in rows[i]:
                    info = route_cache.get(child_idx)
                    if info is None:
                        child_op = ops[child_idx]
                        info = (child_op.stage, child_op.routing_mode, child_op)
                        route_cache[child_idx] = info
                    stage, mode, child_op = info
                    child = Traverser(
                        query_id, vertex, child_idx, payload, 0, stage, loops
                    )
                    spawned += 1
                    if mode == "free":
                        target = pid
                    elif mode == "vertex":
                        target = partitioner(vertex)
                    else:
                        routed = child_op.routing(partitioner, child)
                        target = pid if routed is None else routed
                    if target == pid:
                        queue.append(child)
                        session.active += 1
                    else:
                        compute += serialize_discounted
                        size = child.estimated_size_bytes()
                        key = (src_node, node_of(target))
                        outgoing[key] = outgoing.get(key, 0) + size
                        remote.append((target, child))
                        trav_msgs += 1
        metrics = self.metrics
        metrics.steps_executed += steps
        metrics.edges_scanned += edges_total
        metrics.memo_ops += memo_total
        metrics.traversers_spawned += spawned
        if trav_msgs:
            metrics.messages[MsgKind.TRAVERSER] += trav_msgs
        session.qmetrics.steps_executed += steps
        return compute

    def _handle_stage_boundary(self, session: _BSPSession) -> None:
        """Advance the stage cursor when the query's frontier drained."""
        while session.active == 0 and not session.cursor.finished:
            barrier = session.cursor.barrier()
            partials = []
            gather_bytes = 0.0
            for pid in range(self.num_partitions):
                memo = self.memo_stores[pid].peek(session.query_id)
                if memo is None:
                    continue
                value = barrier.partial(memo)
                if value is None:
                    continue
                size = barrier.estimated_partial_size(value)
                partials.append(GatheredPartial(pid, value, size))
                if self.node_of(pid) != 0:
                    gather_bytes += size
                    self.metrics.messages[MsgKind.PARTIAL] += 1
            # Gather + combine happen at the coordinator after a barrier.
            self.time_us += (
                self.cost.tx_time_us(int(gather_bytes))
                + self.cost.hardware.network_latency_us
                + self.cost.combine_partial_us * max(len(partials), 1)
            )
            seeds = session.cursor.complete_stage(partials, session.rng)
            if session.cursor.finished:
                session.qmetrics.completed_at_us = self.time_us
                session.qmetrics.result_rows = len(session.results())
                for store in self.memo_stores:
                    store.clear_query(session.query_id)
                break
            for seed in seeds:
                routed = session.plan.ops[seed.op_idx].routing(
                    self.graph.partitioner, seed
                )
                if routed is None:
                    routed = (
                        self.graph.partition_of(seed.vertex)
                        if seed.vertex >= 0
                        else 0
                    )
                session.push(routed, seed)
