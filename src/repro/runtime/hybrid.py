"""Hybrid sync/async execution — the paper's suggested extension (§VI).

The related-work discussion notes that Sync (BSP) and Async execution have
complementary strengths — the paper's own Fig 9 shows BSP winning the very
largest k-hop query while async PSTM dominates everywhere else — and
suggests that "integrating Sync mode or PowerSwitch's hybrid approach in
GraphDance could further improve the performance of long-running queries."

:class:`HybridEngine` implements that idea at query granularity:

1. estimate the query's traverser volume with the cost-based planner's
   fanout statistics (:func:`estimate_plan_work`);
2. route small/latency-bound queries to the async PSTM engine (barriers
   would dominate them) and huge bandwidth-bound queries to the BSP engine
   (bulk supersteps amortize per-traverser overhead);
3. both engines share the same partitioned graph, so results are identical
   either way — only cost changes.

The switch threshold is expressed in *estimated traverser steps*; the
default is calibrated so the Fig 9 crossover (the FS-like 4-hop query)
lands on the BSP side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.steps import (
    ExpandOp,
    FixedVertexSource,
    MinDistBranchOp,
    PhysicalOp,
    ScanSource,
)
from repro.graph.partition import PartitionedGraph
from repro.query.plan import PhysicalPlan
from repro.query.planner import GraphStats, PatternEdge
from repro.runtime.bsp import BSPEngine
from repro.runtime.cluster import ClusterConfig
from repro.runtime.costmodel import CostModel
from repro.runtime.engine import AsyncPSTMEngine, EngineConfig, QueryResult

#: Queries estimated above this many traverser steps run under BSP. The
#: estimator counts distinct frontier vertices (memo-capped), so this sits
#: well below the raw step counts of the bandwidth-bound regime; it cleanly
#: separates the Fig 9 crossover query (FS-like 4-hop, est. ≈ 46 k) from
#: the deepest latency-bound queries (LJ-like 4-hop, est. ≈ 6.5 k).
DEFAULT_SWITCH_THRESHOLD = 30_000.0


def estimate_plan_work(plan: PhysicalPlan, stats: GraphStats,
                       graph: PartitionedGraph) -> float:
    """Rough traverser-step estimate for a compiled plan.

    Walks the operator list multiplying expansion fanouts; k-hop loops
    contribute a geometric series capped at the graph size per level (the
    distance memo bounds each level at |V| vertices). Deliberately crude —
    the switch only needs order-of-magnitude separation between
    latency-bound and bandwidth-bound queries.
    """
    count = 1.0
    total = 1.0
    n = max(graph.vertex_count, 1)
    for op in plan.ops:
        if isinstance(op, ScanSource):
            count = float(
                graph.label_counts.get(op.label, n) if op.label else n
            )
            total += count
        elif isinstance(op, MinDistBranchOp):
            # The expansion loop: fanout^k paths, memo-capped at |V| per hop.
            expand = plan.ops[op.loop_idx]
            if isinstance(expand, ExpandOp):
                fanout = stats.fanout(
                    PatternEdge(
                        "out" if expand.direction == "out" else "in",
                        expand.edge_label or "",
                    )
                )
                level = count
                for _hop in range(op.max_dist):
                    level = min(level * max(fanout, 1e-9), float(n))
                    total += level
                count = min(count + level, float(n))
        elif isinstance(op, ExpandOp):
            # Skip loop-body expands (handled by their MinDistBranch).
            if any(
                isinstance(o, MinDistBranchOp) and o.loop_idx == op.idx
                for o in plan.ops
            ):
                continue
            fanout = stats.fanout(
                PatternEdge(
                    "out" if op.direction == "out" else "in",
                    op.edge_label or "",
                )
            )
            count *= max(fanout, 1e-9)
            total += count
    return total


@dataclass
class HybridDecision:
    """One routing decision, for introspection and tests."""

    plan_name: str
    estimated_steps: float
    engine: str  # "async" | "bsp"


class HybridEngine:
    """Route each query to async PSTM or BSP by estimated volume."""

    def __init__(
        self,
        graph: PartitionedGraph,
        cluster: ClusterConfig,
        cost_model: Optional[CostModel] = None,
        config: Optional[EngineConfig] = None,
        switch_threshold: float = DEFAULT_SWITCH_THRESHOLD,
        stats: Optional[GraphStats] = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.switch_threshold = switch_threshold
        self.stats = stats or GraphStats.from_partitioned(graph)
        self.async_engine = AsyncPSTMEngine(
            graph,
            cluster.nodes,
            cluster.workers_per_node,
            hardware=cluster.hardware,
            cost_model=cost_model,
            config=config or EngineConfig(name="hybrid/async"),
            seed=seed,
        )
        self.bsp_engine = BSPEngine(
            graph,
            cluster.nodes,
            cluster.workers_per_node,
            hardware=cluster.hardware,
            cost_model=cost_model,
            name="hybrid/bsp",
        )
        self.decisions: List[HybridDecision] = []

    def choose(self, plan: PhysicalPlan) -> HybridDecision:
        """The routing decision for a plan (recorded for inspection)."""
        estimate = estimate_plan_work(plan, self.stats, self.graph)
        engine = "bsp" if estimate >= self.switch_threshold else "async"
        decision = HybridDecision(plan.name, estimate, engine)
        self.decisions.append(decision)
        return decision

    def run(
        self, plan: PhysicalPlan, params: Optional[Dict[str, Any]] = None
    ) -> QueryResult:
        """Route the query and run it to completion."""
        decision = self.choose(plan)
        if decision.engine == "bsp":
            return self.bsp_engine.run(plan, params)
        return self.async_engine.run(plan, params)
