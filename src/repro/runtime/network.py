"""Two-tier message passing over a simulated NIC (paper §IV-B).

The paper's I/O path has two tiers:

1. **Thread-level combining (TLC)** — each worker keeps one buffer per
   destination node; messages are stashed until the buffer exceeds a flush
   threshold (8 KB) or the worker idles. This tier lives in
   :class:`repro.runtime.worker.Worker`.
2. **Node-level combining (NLC)** — flushed buffers from all workers of a
   node are merged by network threads into packs, one TCP send per
   destination node. Same-node messages short-cut through shared memory.

This module implements tier 2 plus the NIC: per-node serial egress with
per-packet overhead, bandwidth-proportional serialization time, and one-way
wire latency. Message-kind counters feed Fig 11; packet counters feed
Fig 12.

**Reliability layer.** When the engine is configured with a
:class:`~repro.runtime.faults.FaultPlan`, every remote NIC packet carries a
per-``(src, dst)`` channel sequence number and is held by the sender until
acknowledged (:meth:`Network._nic_send` → :meth:`Network._transmit` →
:meth:`Network._receive_packet` → :meth:`Network._receive_ack`). Unacked
packets are retransmitted after a timeout with exponential backoff
(:meth:`Network._check_retransmit`); the receiver suppresses duplicate
sequence numbers, so drops and duplications injected by the fault plan
never lose or double-count a traverser's progression weight. With no fault
plan the layer is entirely disarmed and the send path is byte-identical to
the unreliable one. See ``docs/FAULTS.md`` for the full protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.runtime.costmodel import CostModel
from repro.runtime.faults import FaultInjector
from repro.runtime.metrics import MsgKind, RunMetrics
from repro.runtime.simclock import SimClock
from repro.runtime.trace import (
    MSG_DELIVER,
    MSG_FAULT,
    MSG_RETRANSMIT,
    MSG_SEND,
    TraceRecorder,
)

#: destination pid used for the tracker/coordinator actor
TRACKER_DST = -1

#: retransmit timeout = RTO_RTT_MULTIPLIER × estimated round-trip time
RTO_RTT_MULTIPLIER = 4.0
#: exponential-backoff cap: retransmit interval never exceeds base × this
MAX_BACKOFF_FACTOR = 16.0


@dataclass
class Message:
    """One logical message (traverser pack, progress report, partial, ...).

    Attributes:
        kind: wire category (:class:`~repro.runtime.metrics.MsgKind`);
            decides how the engine dispatches the delivery.
        dst_pid: destination worker partition id, or :data:`TRACKER_DST`
            for the tracker/coordinator actor.
        payload: kind-specific body (a list of traversers, a progress
            tuple, a gathered partial, ...).
        size_bytes: estimated wire size, used for NIC serialization time
            and tier-1 flush accounting.
        query_id: owning query (``-1`` for query-less control traffic);
            used by the reliability layer to attribute retransmits and
            injected faults to :class:`~repro.runtime.metrics.QueryMetrics`.
    """

    kind: MsgKind
    dst_pid: int  # worker partition id, or TRACKER_DST
    payload: Any
    size_bytes: int
    query_id: int = -1


DeliverFn = Callable[[Message], None]


@dataclass
class _Packet:
    """Sender-side record of one unacknowledged reliable packet."""

    src: int
    dst: int
    seq: int
    messages: List[Message]
    total: int
    attempts: int = 0


class _DupFilter:
    """Receiver-side duplicate suppression for one ``(src, dst)`` channel.

    Tracks a contiguous watermark plus the out-of-order residue so memory
    stays bounded by the retransmit window, not the packet count.
    """

    __slots__ = ("_watermark", "_ahead")

    def __init__(self) -> None:
        self._watermark = -1  # every seq <= watermark has been delivered
        self._ahead: Set[int] = set()

    def admit(self, seq: int) -> bool:
        """Record ``seq``; True when it is new (first delivery)."""
        if seq <= self._watermark or seq in self._ahead:
            return False
        self._ahead.add(seq)
        while self._watermark + 1 in self._ahead:
            self._watermark += 1
            self._ahead.discard(self._watermark)
        return True


class Network:
    """Simulated cluster interconnect with optional node-level combining.

    The engine owns one instance; workers hand it flushed tier-1 buffers
    via :meth:`send` and it schedules deliveries on the shared
    :class:`~repro.runtime.simclock.SimClock`. When ``faults`` is given,
    remote packets additionally go through the ack/retransmit layer
    described in the module docstring.

    Args:
        clock: the run's discrete-event clock.
        num_nodes: cluster node count (NIC egress is serial per node).
        cost: calibrated cost model (tx time, latencies).
        metrics: run-wide counters to update.
        deliver: callback invoked for every arriving :class:`Message`.
        node_combining: enable tier-2 (NLC) packing of same-destination
            buffers into one packet per window.
        faults: arm the reliability layer and draw packet fates from this
            injector; ``None`` (default) keeps the classic lossless NIC.
        on_retransmit: called with a packet's messages each time it is
            retransmitted (the engine attributes these to per-query
            metrics).
        on_packet_fault: called with ``(kind, messages)`` when the injector
            drops/duplicates/delays a packet.
    """

    def __init__(
        self,
        clock: SimClock,
        num_nodes: int,
        cost: CostModel,
        metrics: RunMetrics,
        deliver: DeliverFn,
        node_combining: bool = True,
        faults: Optional[FaultInjector] = None,
        on_retransmit: Optional[Callable[[List[Message]], None]] = None,
        on_packet_fault: Optional[Callable[[str, List[Message]], None]] = None,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.clock = clock
        self.num_nodes = num_nodes
        self.cost = cost
        self.metrics = metrics
        self.deliver = deliver
        self.node_combining = node_combining
        # message events carry query_id -1: a packed buffer mixes queries
        self.trace = trace
        # per-node NIC egress availability
        self._nic_free_at = [0.0] * num_nodes
        # NLC: per (src, dst) pending messages and whether a send is armed
        self._combiner: Dict[Tuple[int, int], List[Message]] = {}
        self._combiner_bytes: Dict[Tuple[int, int], int] = {}
        self._combiner_armed: Dict[Tuple[int, int], bool] = {}
        # -- reliability layer (armed only when a FaultPlan is configured) --
        self.faults = faults
        self.on_retransmit = on_retransmit
        self.on_packet_fault = on_packet_fault
        if faults is not None:
            self._next_seq: Dict[Tuple[int, int], int] = {}
            self._unacked: Dict[Tuple[int, int, int], _Packet] = {}
            self._dup_filters: Dict[Tuple[int, int], _DupFilter] = {}
            # Base retransmit timeout: a few round trips, where one round
            # trip is two wire latencies plus serializing a full tier-1
            # buffer. Comfortably above the lossless ack delay, so a
            # zero-rate plan never fires a spurious retransmit.
            rtt = 2.0 * cost.hardware.network_latency_us + cost.tx_time_us(8192)
            self.rto_us = RTO_RTT_MULTIPLIER * rtt

    # -- public API ---------------------------------------------------------

    def send(self, src_node: int, dst_node: int, messages: List[Message], when: float) -> None:
        """Transmit a flushed buffer from ``src_node`` toward ``dst_node``.

        ``when`` is the flush instant. Same-node traffic takes the
        shared-memory shortcut (reliable by definition — the failure model
        only injects faults on the wire); remote traffic goes through the
        NIC, with node-level combining when enabled, and through the
        ack/retransmit layer when a fault plan is armed.
        """
        if not messages:
            return
        counters = self.metrics.messages
        traverser_kind = MsgKind.TRAVERSER
        total = 0
        for msg in messages:
            total += msg.size_bytes
            # A traverser batch is many logical messages packed into one
            # buffer flush; Fig 11 counts logical messages.
            kind = msg.kind
            if kind is traverser_kind and isinstance(msg.payload, list):
                counters[kind] += len(msg.payload)
            else:
                counters[kind] += 1
        if self.trace is not None:
            self.trace.emit(MSG_SEND, -1, src=src_node, dst=dst_node,
                            n=len(messages), bytes=total)
        if src_node == dst_node:
            self.metrics.local_deliveries += len(messages)
            arrival = when + self.cost.hardware.shm_latency_us
            self.clock.schedule_at(arrival, lambda ms=messages: self._deliver_all(ms))
            return
        if self.node_combining:
            self._combine(src_node, dst_node, messages, total, when)
        else:
            self._nic_send(src_node, dst_node, messages, total, when)

    # -- node-level combining --------------------------------------------------

    def _combine(
        self,
        src: int,
        dst: int,
        messages: List[Message],
        total: int,
        when: float,
    ) -> None:
        """Stage messages in the per-``(src, dst)`` combiner window."""
        key = (src, dst)
        self._combiner.setdefault(key, []).extend(messages)
        self._combiner_bytes[key] = self._combiner_bytes.get(key, 0) + total
        if not self._combiner_armed.get(key):
            self._combiner_armed[key] = True
            fire_at = when + self.cost.nlc_window_us
            self.clock.schedule_at(fire_at, lambda k=key: self._fire_combiner(k))

    def _fire_combiner(self, key: Tuple[int, int]) -> None:
        """Window expiry: hand the combined pack to the NIC."""
        messages = self._combiner.pop(key, [])
        total = self._combiner_bytes.pop(key, 0)
        self._combiner_armed[key] = False
        if messages:
            self._nic_send(key[0], key[1], messages, total, self.clock.now)

    # -- NIC --------------------------------------------------------------------

    def _nic_send(
        self,
        src: int,
        dst: int,
        messages: List[Message],
        total: int,
        when: float,
    ) -> None:
        """One NIC packet: serialize on the egress port, then fly.

        Lossless path when no fault plan is armed; otherwise the packet is
        sequenced, tracked until acked, and handed to :meth:`_transmit`.
        """
        if self.faults is None:
            start = max(when, self._nic_free_at[src])
            tx = self.cost.tx_time_us(total)
            self._nic_free_at[src] = start + tx
            arrival = start + tx + self.cost.hardware.network_latency_us
            self.metrics.packets_sent += 1
            self.metrics.bytes_sent += total
            self.clock.schedule_at(arrival, lambda ms=messages: self._deliver_all(ms))
            return
        key = (src, dst)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        packet = _Packet(src, dst, seq, messages, total)
        self._unacked[(src, dst, seq)] = packet
        self._transmit(packet, when)

    # -- reliability layer -------------------------------------------------------

    def _transmit(self, packet: _Packet, when: float) -> None:
        """(Re)transmit one reliable packet and arm its retransmit timer.

        Every attempt occupies the NIC and is counted in ``packets_sent``;
        the fault injector then decides whether this copy is dropped,
        duplicated, or delayed on the wire.
        """
        start = max(when, self._nic_free_at[packet.src])
        tx = self.cost.tx_time_us(packet.total)
        self._nic_free_at[packet.src] = start + tx
        arrival = start + tx + self.cost.hardware.network_latency_us
        self.metrics.packets_sent += 1
        self.metrics.bytes_sent += packet.total
        packet.attempts += 1
        fate = self.faults.packet_fate()
        trace = self.trace
        if fate.delay_us:
            arrival += fate.delay_us
            self.metrics.packets_delayed += 1
            if trace is not None:
                trace.emit(MSG_FAULT, -1, fault="delay", src=packet.src,
                           dst=packet.dst, seq=packet.seq)
            if self.on_packet_fault is not None:
                self.on_packet_fault("delay", packet.messages)
        if fate.drop:
            self.metrics.packets_dropped += 1
            if trace is not None:
                trace.emit(MSG_FAULT, -1, fault="drop", src=packet.src,
                           dst=packet.dst, seq=packet.seq)
            if self.on_packet_fault is not None:
                self.on_packet_fault("drop", packet.messages)
        else:
            self.clock.schedule_at(
                arrival, lambda p=packet: self._receive_packet(p)
            )
        if fate.duplicate:
            # The network minted a second copy; it takes its own wire trip.
            self.metrics.packets_duplicated += 1
            if trace is not None:
                trace.emit(MSG_FAULT, -1, fault="duplicate", src=packet.src,
                           dst=packet.dst, seq=packet.seq)
            if self.on_packet_fault is not None:
                self.on_packet_fault("duplicate", packet.messages)
            dup_arrival = arrival + self.cost.hardware.network_latency_us
            self.clock.schedule_at(
                dup_arrival, lambda p=packet: self._receive_packet(p)
            )
        # Retransmit timer: exponential backoff, capped.
        backoff = min(2.0 ** (packet.attempts - 1), MAX_BACKOFF_FACTOR)
        self.clock.schedule_at(
            start + tx + self.rto_us * backoff,
            lambda p=packet: self._check_retransmit(p),
        )

    def _check_retransmit(self, packet: _Packet) -> None:
        """Timer expiry: resend the packet unless its ack arrived."""
        if (packet.src, packet.dst, packet.seq) not in self._unacked:
            return  # acknowledged in time
        self.metrics.retransmits += 1
        if self.trace is not None:
            self.trace.emit(MSG_RETRANSMIT, -1, src=packet.src,
                            dst=packet.dst, seq=packet.seq,
                            attempt=packet.attempts)
        if self.on_retransmit is not None:
            self.on_retransmit(packet.messages)
        self._transmit(packet, self.clock.now)

    def _receive_packet(self, packet: _Packet) -> None:
        """Reliable-path arrival: dedup by sequence number, deliver, ack.

        Duplicates (network-minted copies *and* spurious retransmits) are
        suppressed but still acknowledged — the sender may be resending
        precisely because the first ack was lost.
        """
        key = (packet.src, packet.dst)
        dup_filter = self._dup_filters.get(key)
        if dup_filter is None:
            dup_filter = self._dup_filters[key] = _DupFilter()
        if dup_filter.admit(packet.seq):
            self._deliver_all(packet.messages)
        else:
            self.metrics.duplicates_suppressed += 1
        if self.faults.drop_ack():
            return  # the retransmit timer will recover
        self.metrics.acks_sent += 1
        # Acks are tiny control frames piggybacked on reverse traffic; they
        # pay wire latency but no modelled NIC occupancy.
        self.clock.schedule_at(
            self.clock.now + self.cost.hardware.network_latency_us,
            lambda p=packet: self._receive_ack(p),
        )

    def _receive_ack(self, packet: _Packet) -> None:
        """Sender-side ack arrival: release the unacked record."""
        self._unacked.pop((packet.src, packet.dst, packet.seq), None)

    @property
    def unacked_packets(self) -> int:
        """Reliable packets still awaiting acknowledgement (0 when idle)."""
        if self.faults is None:
            return 0
        return len(self._unacked)

    # -- delivery ----------------------------------------------------------------

    def _deliver_all(self, messages: List[Message]) -> None:
        """Hand every message of an arrived packet to the engine."""
        if self.trace is not None:
            self.trace.emit(MSG_DELIVER, -1, n=len(messages))
        for msg in messages:
            self.deliver(msg)
