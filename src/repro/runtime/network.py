"""Two-tier message passing over a simulated NIC (paper §IV-B).

The paper's I/O path has two tiers:

1. **Thread-level combining (TLC)** — each worker keeps one buffer per
   destination node; messages are stashed until the buffer exceeds a flush
   threshold (8 KB) or the worker idles. This tier lives in
   :class:`repro.runtime.worker.Worker`.
2. **Node-level combining (NLC)** — flushed buffers from all workers of a
   node are merged by network threads into packs, one TCP send per
   destination node. Same-node messages short-cut through shared memory.

This module implements tier 2 plus the NIC: per-node serial egress with
per-packet overhead, bandwidth-proportional serialization time, and one-way
wire latency. Message-kind counters feed Fig 11; packet counters feed
Fig 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.runtime.costmodel import CostModel
from repro.runtime.metrics import MsgKind, RunMetrics
from repro.runtime.simclock import SimClock

#: destination pid used for the tracker/coordinator actor
TRACKER_DST = -1


@dataclass
class Message:
    """One logical message (traverser pack, progress report, partial, ...)."""

    kind: MsgKind
    dst_pid: int  # worker partition id, or TRACKER_DST
    payload: Any
    size_bytes: int
    query_id: int = -1


DeliverFn = Callable[[Message], None]


class Network:
    """Simulated cluster interconnect with optional node-level combining."""

    def __init__(
        self,
        clock: SimClock,
        num_nodes: int,
        cost: CostModel,
        metrics: RunMetrics,
        deliver: DeliverFn,
        node_combining: bool = True,
    ) -> None:
        self.clock = clock
        self.num_nodes = num_nodes
        self.cost = cost
        self.metrics = metrics
        self.deliver = deliver
        self.node_combining = node_combining
        # per-node NIC egress availability
        self._nic_free_at = [0.0] * num_nodes
        # NLC: per (src, dst) pending messages and whether a send is armed
        self._combiner: Dict[Tuple[int, int], List[Message]] = {}
        self._combiner_bytes: Dict[Tuple[int, int], int] = {}
        self._combiner_armed: Dict[Tuple[int, int], bool] = {}

    # -- public API ---------------------------------------------------------

    def send(self, src_node: int, dst_node: int, messages: List[Message], when: float) -> None:
        """Transmit a flushed buffer from ``src_node`` toward ``dst_node``.

        ``when`` is the flush instant. Same-node traffic takes the
        shared-memory shortcut; remote traffic goes through the NIC, with
        node-level combining when enabled.
        """
        if not messages:
            return
        counters = self.metrics.messages
        traverser_kind = MsgKind.TRAVERSER
        total = 0
        for msg in messages:
            total += msg.size_bytes
            # A traverser batch is many logical messages packed into one
            # buffer flush; Fig 11 counts logical messages.
            kind = msg.kind
            if kind is traverser_kind and isinstance(msg.payload, list):
                counters[kind] += len(msg.payload)
            else:
                counters[kind] += 1
        if src_node == dst_node:
            self.metrics.local_deliveries += len(messages)
            arrival = when + self.cost.hardware.shm_latency_us
            self.clock.schedule_at(arrival, lambda ms=messages: self._deliver_all(ms))
            return
        if self.node_combining:
            self._combine(src_node, dst_node, messages, total, when)
        else:
            self._nic_send(src_node, dst_node, messages, total, when)

    # -- node-level combining --------------------------------------------------

    def _combine(
        self,
        src: int,
        dst: int,
        messages: List[Message],
        total: int,
        when: float,
    ) -> None:
        key = (src, dst)
        self._combiner.setdefault(key, []).extend(messages)
        self._combiner_bytes[key] = self._combiner_bytes.get(key, 0) + total
        if not self._combiner_armed.get(key):
            self._combiner_armed[key] = True
            fire_at = when + self.cost.nlc_window_us
            self.clock.schedule_at(fire_at, lambda k=key: self._fire_combiner(k))

    def _fire_combiner(self, key: Tuple[int, int]) -> None:
        messages = self._combiner.pop(key, [])
        total = self._combiner_bytes.pop(key, 0)
        self._combiner_armed[key] = False
        if messages:
            self._nic_send(key[0], key[1], messages, total, self.clock.now)

    # -- NIC --------------------------------------------------------------------

    def _nic_send(
        self,
        src: int,
        dst: int,
        messages: List[Message],
        total: int,
        when: float,
    ) -> None:
        start = max(when, self._nic_free_at[src])
        tx = self.cost.tx_time_us(total)
        self._nic_free_at[src] = start + tx
        arrival = start + tx + self.cost.hardware.network_latency_us
        self.metrics.packets_sent += 1
        self.metrics.bytes_sent += total
        self.clock.schedule_at(arrival, lambda ms=messages: self._deliver_all(ms))

    def _deliver_all(self, messages: List[Message]) -> None:
        for msg in messages:
            self.deliver(msg)
