"""Engine configuration: the behavioral switch set for all variants.

:class:`EngineConfig` is a frozen value object consumed by
:class:`~repro.runtime.engine.AsyncPSTMEngine` and every baseline variant
built on it (BSP, Banyan/GAIA-style dataflow, non-partitioned). It sits at
the bottom of the runtime layering — it depends only on the core model and
the error types — so any layer (workers, kernels, delivery, recovery) can
read configuration without importing the engine.

All validation happens eagerly in ``__post_init__`` so a bad configuration
fails at construction, not mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.progress import ProgressMode
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import FaultPlan

__all__ = ["EngineConfig", "IO_SYNC", "IO_TLC", "IO_TLC_NLC"]

#: I/O scheduler configurations of Fig 12.
IO_SYNC = "sync"          # no batching: every message is its own packet
IO_TLC = "tlc"            # thread-level combining only
IO_TLC_NLC = "tlc+nlc"    # full two-tier scheduler (default)


@dataclass(frozen=True)
class EngineConfig:
    """Behavioral switches for the async engine and its baselines."""

    name: str = "graphdance"
    progress_mode: ProgressMode = ProgressMode.WEIGHTED_COALESCED
    io_mode: str = IO_TLC_NLC
    flush_threshold_bytes: int = 8192
    batch_size: int = 64
    #: False → the non-partitioned baseline: one shared state per node
    partitioned_state: bool = True
    #: dataflow-style per-(op × worker) query setup cost (Banyan/GAIA)
    per_query_instantiation: bool = False
    #: route all aggregation traversers to partition 0 (GAIA)
    centralized_agg: bool = False
    #: compute scaling (hand-optimized single-node plugins use < 1)
    cpu_scale: float = 1.0
    #: True → run the reference one-traverser-at-a-time worker loop instead
    #: of the batched kernels. Simulated results are identical either way
    #: (the equivalence suite asserts it); scalar exists for verification
    #: and debugging, batched is the default because it is much faster in
    #: wall-clock terms.
    scalar_execution: bool = False
    #: explicit kernel tier: "scalar" | "batch" | "vector" | None.
    #: None auto-selects the fastest available tier — "vector" when NumPy
    #: is importable, else "batch" (or "scalar" when ``scalar_execution``
    #: is set). Asking for "vector" without NumPy raises
    #: ConfigurationError at engine construction; every tier produces
    #: bit-for-bit identical simulated output, so the choice only affects
    #: wall-clock time.
    kernel: Optional[str] = None
    #: fault schedule for chaos runs (None → perfect network, immortal
    #: workers, and a send path bit-identical to the pre-fault engine).
    #: Arming a plan also arms the ack/retransmit layer and the watchdog.
    fault_plan: Optional["FaultPlan"] = None
    #: how many times the watchdog may re-execute a stuck query before the
    #: engine gives up with RetryBudgetExceededError
    retry_budget: int = 3
    #: a query showing zero progress for this long is declared stuck and
    #: recovered (only armed when fault_plan is set)
    watchdog_timeout_us: float = 100_000.0
    #: arm stage-boundary checkpointing (docs/RECOVERY.md): a query's
    #: frontier seeds, per-partition memo shards, and RNG state are
    #: snapshotted at each certified stage boundary at most this often
    #: (0.0 → every boundary; None → checkpointing off). Recovery then
    #: restores from the last checkpoint and replays only post-checkpoint
    #: work instead of force-retrying the whole query. Requires a
    #: weighted progress mode — the quiescent cut *is* the closed ledger.
    checkpoint_interval_us: Optional[float] = None
    #: checkpoints retained per query (older boundaries are evicted);
    #: restore always uses the newest
    checkpoint_retention: int = 1
    # -- overload protection (docs/OVERLOAD.md; all default to "off" so the
    # -- default config stays bit-for-bit identical to the pre-overload
    # -- engine, which the equivalence suites assert) ----------------------
    #: at most this many queries execute concurrently; excess submissions
    #: wait in the admission queue (None → admission control disabled)
    max_concurrent_queries: Optional[int] = None
    #: bounded admission queue: submissions beyond this many waiters are
    #: shed immediately with QueryRejectedError
    admission_queue_size: int = 64
    #: a waiter still undispatched after this long fails with
    #: AdmissionTimeoutError (None → waiters never expire)
    admission_timeout_us: Optional[float] = None
    #: per-query spawn budget: a query spawning more traversers than this
    #: is cancelled with ResourceBudgetExceededError (None → unbounded)
    max_traversers_per_query: Optional[int] = None
    #: per-query memo budget across all partitions, in modelled bytes
    #: (None → unbounded)
    max_memo_bytes_per_query: Optional[int] = None
    #: per-partition bound on in-flight + inboxed remote traversers; arms
    #: credit-based sender throttling (None → unbounded, classic path)
    inbox_capacity: Optional[int] = None
    #: budget-cancelled queries whose final stage already holds partials
    #: return those partial rows (flagged partial) instead of raising
    allow_partial_results: bool = False
    #: arm the voluntary-preemption policy (docs/RECOVERY.md): when a
    #: higher-priority waiter is parked and no slot is free, the admission
    #: controller preempts the lowest-priority resident query — it yields
    #: at its next certified stage boundary, takes a forced snapshot, is
    #: evicted, and later resumes from that snapshot. Requires admission
    #: control (``max_concurrent_queries``) and an armed checkpoint plane
    #: (``checkpoint_interval_us``); ``engine.preempt()`` stays callable
    #: without this flag as long as the checkpoint plane is armed.
    preemption: bool = False
    #: preemption victims must hold at least this many stored checkpoints
    #: ("past its first checkpoint" with the default of 1) — a query that
    #: has not yet crossed a boundary is left alone, since evicting it
    #: saves a frontier no cheaper than its own resubmission (0 → any
    #: resident query is fair game)
    preemption_min_checkpoints: int = 1
    #: attach a TraceRecorder and emit structured events from every layer
    #: (docs/OBSERVABILITY.md). Off by default: the disabled mode allocates
    #: no event objects on the hot path.
    trace: bool = False
    #: arm the transaction plane (docs/TRANSACTIONS.md): the engine builds
    #: a TxnPlane sharing the graph's placement, every admitted query is
    #: pinned to a snapshot timestamp (the tracker node's cached LCT), and
    #: the kernels read base + TEL-delta snapshot views instead of the raw
    #: CSR stores. Off by default: the unarmed engine is bit-identical to
    #: pre-PR10 behaviour.
    transactions: bool = False
    #: simulated delay (µs) before a commit's LCT broadcast reaches node
    #: caches (0 → instantaneous). Staleness is the only permitted error:
    #: a lagged cache pins *older* snapshots, never uncommitted ones.
    lct_broadcast_lag_us: float = 0.0

    def __post_init__(self) -> None:
        if self.io_mode not in (IO_SYNC, IO_TLC, IO_TLC_NLC):
            raise ConfigurationError(f"unknown io_mode {self.io_mode!r}")
        if self.kernel not in (None, "scalar", "batch", "vector"):
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected 'scalar', "
                f"'batch', 'vector', or None for auto-selection"
            )
        if self.kernel is not None and self.scalar_execution and (
            self.kernel != "scalar"
        ):
            raise ConfigurationError(
                f"kernel={self.kernel!r} conflicts with "
                f"scalar_execution=True; set one or the other"
            )
        for name in ("max_concurrent_queries", "max_traversers_per_query",
                     "max_memo_bytes_per_query", "inbox_capacity"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        if self.admission_queue_size < 1:
            raise ConfigurationError(
                f"admission_queue_size must be >= 1, "
                f"got {self.admission_queue_size}"
            )
        if self.admission_timeout_us is not None and self.admission_timeout_us <= 0:
            raise ConfigurationError(
                f"admission_timeout_us must be > 0, "
                f"got {self.admission_timeout_us}"
            )
        if self.checkpoint_interval_us is not None:
            if self.checkpoint_interval_us < 0:
                raise ConfigurationError(
                    f"checkpoint_interval_us must be >= 0, "
                    f"got {self.checkpoint_interval_us}"
                )
            if self.checkpoint_retention < 1:
                raise ConfigurationError(
                    f"checkpoint_retention must be >= 1, "
                    f"got {self.checkpoint_retention}"
                )
            if not self.progress_mode.is_weighted:
                # The checkpoint cut is certified by the stage ledger
                # reaching the root weight; naive active counters provide
                # no such certificate, so a "boundary" there proves nothing
                # about in-flight traversers.
                raise ConfigurationError(
                    "checkpointing requires a weighted progress mode; the "
                    "quiescent stage boundary is certified by the weight "
                    "ledger (Theorem 1), which NAIVE_CENTRAL lacks"
                )
        if self.preemption:
            if self.max_concurrent_queries is None:
                raise ConfigurationError(
                    "preemption requires admission control: set "
                    "max_concurrent_queries (the policy exists to free "
                    "slots for parked waiters)"
                )
            if self.checkpoint_interval_us is None:
                raise ConfigurationError(
                    "preemption requires an armed checkpoint plane: set "
                    "checkpoint_interval_us (a paused query IS its forced "
                    "boundary snapshot)"
                )
        if self.lct_broadcast_lag_us < 0:
            raise ConfigurationError(
                f"lct_broadcast_lag_us must be >= 0, "
                f"got {self.lct_broadcast_lag_us}"
            )
        if self.lct_broadcast_lag_us and not self.transactions:
            raise ConfigurationError(
                "lct_broadcast_lag_us requires transactions=True; without "
                "the transaction plane there is no LCT to broadcast"
            )
        if self.preemption_min_checkpoints < 0:
            raise ConfigurationError(
                f"preemption_min_checkpoints must be >= 0, "
                f"got {self.preemption_min_checkpoints}"
            )
        if self.fault_plan is not None:
            if self.progress_mode is ProgressMode.NAIVE_CENTRAL:
                # Naive active counters cannot survive loss: a dropped
                # delta corrupts the count forever, and the weight ledger
                # the recovery protocol leans on does not exist.
                raise ConfigurationError(
                    "fault injection requires a weighted progress mode; "
                    "NAIVE_CENTRAL counters cannot detect lost work"
                )
            if self.retry_budget < 0:
                raise ConfigurationError(
                    f"retry_budget must be >= 0, got {self.retry_budget}"
                )
            if self.watchdog_timeout_us <= 0:
                raise ConfigurationError(
                    f"watchdog_timeout_us must be > 0, "
                    f"got {self.watchdog_timeout_us}"
                )
            # Re-validate the plan's rates here as well: FaultPlan checks
            # its own fields at construction, but plans minted through
            # object.__setattr__ tricks or pickled from older versions can
            # reach the engine unvalidated — and a negative rate turns the
            # injector's RNG comparisons into silent no-ops or certainties.
            plan = self.fault_plan
            for name in ("drop_rate", "dup_rate", "delay_rate",
                         "ack_drop_rate"):
                rate = getattr(plan, name)
                if not 0.0 <= rate < 1.0:
                    raise ConfigurationError(
                        f"fault_plan.{name} must be in [0, 1), got {rate}"
                    )
            if plan.delay_us < 0:
                raise ConfigurationError(
                    f"fault_plan.delay_us must be >= 0, got {plan.delay_us}"
                )
