"""The asynchronous PSTM engine — GraphDance's runtime (paper §IV).

:class:`AsyncPSTMEngine` executes compiled plans on a simulated cluster.
It is the composition root of a layered runtime; each mechanism lives in
its own module and the engine wires them together and owns the public API:

* **query lifecycle** (:mod:`repro.runtime.lifecycle`) — every submission
  walks one validated state machine (QUEUED → ... → DONE/FAILED/
  REJECTED/PARTIAL); the engine performs the transitions at submission,
  admission, dispatch, cancellation, and completion;
* **execution** (:mod:`repro.runtime.worker` + :mod:`repro.runtime.kernels`)
  — one single-threaded worker per partition (shared-nothing; the
  non-partitioned baseline attaches several workers to one shared per-node
  partition instead), each draining through a pluggable execution kernel;
* **delivery** (:mod:`repro.runtime.delivery`) — message routing, cancel
  filtering, exactly-once weight reclamation and credit release, and the
  serial tracker actor;
* **transport** (:mod:`repro.runtime.network`) — two-tier message passing;
* **progress** (:mod:`repro.core.progress`) — weight-based tracking with
  optional coalescing, hosted on the centralized tracker;
* **recovery** (:mod:`repro.runtime.faults`) — worker-fault firing, the
  progress watchdog, and bounded query retry;
* **overload protection** (:mod:`repro.runtime.overload`) — admission
  control and credit-based backpressure.

Queries run **for real** — every operator touches real partitioned data and
the result rows are exact; the simulation only decides *when* things happen,
which is what the paper's evaluation measures.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.machine import resolve_partition
from repro.core.memo import MemoStore
from repro.core.progress import ProgressMode, ProgressTracker
from repro.core.subquery import GatheredPartial
from repro.core.traverser import Traverser
from repro.errors import (
    AdmissionTimeoutError,
    ConfigurationError,
    ExecutionError,
    QueryCancelledError,
    QueryRejectedError,
    QueryTimeoutError,
    ResourceBudgetExceededError,
    RetryBudgetExceededError,
)
from repro.graph.partition import PartitionedGraph
from repro.query.plan import PhysicalPlan
from repro.runtime.config import EngineConfig, IO_SYNC, IO_TLC, IO_TLC_NLC
from repro.runtime.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    HardwareProfile,
    MODERN,
    validate_cluster,
)
from repro.runtime.delivery import DeliveryPlane, TrackerActor
from repro.runtime.kernels import kernel_name_for
from repro.runtime.faults import FaultInjector, RecoveryManager
from repro.runtime.lifecycle import (
    REASON_ADMISSION_TIMEOUT,
    REASON_QUEUE_FULL,
    QueryProfile,
    QueryResult,
    QuerySession,
    QueryState,
    salvage_partial,
    stage0_seeds,
)
from repro.runtime.metrics import LatencyRecorder, MsgKind, RunMetrics
from repro.runtime.network import TRACKER_DST, Message, Network
from repro.runtime.checkpoint import CheckpointPlane
from repro.runtime.overload import MEMO_CHECK_INTERVAL, AdmissionController
from repro.runtime.preempt import (cancel_paused, pause_at_boundary,
                                   request_preempt, resume_session, try_resume)
from repro.runtime.simclock import SimClock
from repro.runtime.trace import SEED_DISPATCH, STAGE_CLOSE, STAGE_OPEN, TraceRecorder
from repro.runtime.txnplane import TxnPlane
from repro.runtime.worker import PartitionRuntime, Worker

__all__ = [
    "AsyncPSTMEngine",
    "CANCEL_MSG_BYTES",
    "EngineConfig",
    "IO_SYNC",
    "IO_TLC",
    "IO_TLC_NLC",
    "MEMO_CHECK_INTERVAL",
    "QueryProfile",
    "QueryResult",
    "QuerySession",
    "QueryState",
]

#: wire size of one CANCEL control message (tag + query id + stage)
CANCEL_MSG_BYTES = 16


class AsyncPSTMEngine:
    """GraphDance: asynchronous distributed PSTM execution (simulated)."""

    def __init__(
        self,
        graph: PartitionedGraph,
        nodes: int,
        workers_per_node: int,
        hardware: HardwareProfile = MODERN,
        cost_model: Optional[CostModel] = None,
        config: EngineConfig = EngineConfig(),
        seed: int = 0,
    ) -> None:
        validate_cluster(nodes, workers_per_node, hardware)
        expected = nodes * workers_per_node if config.partitioned_state else nodes
        if graph.num_partitions != expected:
            raise ConfigurationError(
                f"{config.name}: graph has {graph.num_partitions} partitions "
                f"but this configuration needs {expected} "
                f"({nodes} nodes × {workers_per_node} workers, "
                f"partitioned_state={config.partitioned_state})"
            )
        self.graph = graph
        self.nodes = nodes
        self.workers_per_node = workers_per_node
        self.config = config
        self.seed = seed
        base_cost = cost_model or DEFAULT_COST_MODEL
        self.cost = replace(
            base_cost.with_hardware(hardware), cpu_scale=config.cpu_scale
        )
        self.num_partitions = graph.num_partitions
        self.partitions_per_node = self.num_partitions // nodes

        self.clock = SimClock()
        self.metrics = RunMetrics()
        #: observability plane (docs/OBSERVABILITY.md); None → hooks are off
        self.trace: Optional[TraceRecorder] = (
            TraceRecorder(
                self.clock, mode=config.progress_mode.value,
                kernel=kernel_name_for(config),
                nodes=nodes, partitions=self.num_partitions, seed=seed,
            )
            if config.trace else None
        )
        #: fault source (None → no faults, no reliability layer, no watchdog)
        self.faults: Optional[FaultInjector] = (
            FaultInjector(config.fault_plan) if config.fault_plan is not None
            else None
        )
        #: routing, cancel filtering, reclamation, credit gates
        self.delivery = DeliveryPlane(self)
        #: worker faults, progress watchdog, bounded query retry
        self.recovery = RecoveryManager(self)
        #: stage-boundary checkpoint store (docs/RECOVERY.md); None → off,
        #: and recovery falls back to force-retry from stage 0
        self.checkpoints: Optional[CheckpointPlane] = (
            CheckpointPlane(config.checkpoint_interval_us,
                            config.checkpoint_retention)
            if config.checkpoint_interval_us is not None else None
        )
        self.network = Network(
            self.clock,
            nodes,
            self.cost,
            self.metrics,
            self.delivery.deliver,
            node_combining=(config.io_mode == IO_TLC_NLC),
            faults=self.faults,
            on_retransmit=self.recovery.note_retransmit,
            on_packet_fault=self.recovery.note_packet_fault,
            trace=self.trace,
        )
        # Effective tier-1 flush threshold: IO_SYNC flushes every message.
        self._flush_threshold = (
            1 if config.io_mode == IO_SYNC else config.flush_threshold_bytes
        )

        self.runtimes: List[PartitionRuntime] = [
            PartitionRuntime(p, graph.stores[p], MemoStore(p))
            for p in range(self.num_partitions)
        ]
        self.workers: List[Worker] = []
        if config.partitioned_state:
            for pid in range(self.num_partitions):
                self.workers.append(
                    Worker(self, pid, self.node_of(pid), self.runtimes[pid])
                )
        else:
            wid = 0
            for node in range(nodes):
                for _ in range(workers_per_node):
                    self.workers.append(Worker(self, wid, node, self.runtimes[node]))
                    wid += 1

        self.tracker_node = 0
        self.tracker = TrackerActor(self)
        #: transaction plane (docs/TRANSACTIONS.md); None keeps the read
        #: path bit-identical to the pre-transactional engine
        self.txnplane: Optional[TxnPlane] = (
            TxnPlane(self) if config.transactions else None
        )
        self.progress = ProgressTracker(config.progress_mode, self._stage_terminated)
        self.sessions: Dict[int, QuerySession] = {}
        self.completed: Dict[int, QuerySession] = {}
        self._next_query_id = 0
        # -- overload protection (all None/False for default configs, so the
        # -- hot paths see one falsy check and stay bit-identical) ----------
        self._admission: Optional[AdmissionController] = (
            AdmissionController(
                self, config.max_concurrent_queries, config.admission_queue_size
            )
            if config.max_concurrent_queries is not None
            else None
        )
        self._budgets_armed = (
            config.max_traversers_per_query is not None
            or config.max_memo_bytes_per_query is not None
        )
        if config.fault_plan is not None:
            for wf in config.fault_plan.worker_faults:
                if not 0 <= wf.wid < len(self.workers):
                    raise ConfigurationError(
                        f"worker fault targets wid {wf.wid}, but this "
                        f"cluster has {len(self.workers)} workers"
                    )
                self.clock.schedule_at(
                    wf.at_us, lambda f=wf: self.recovery.inject_worker_fault(f)
                )

    # -- topology -----------------------------------------------------------

    def node_of(self, pid: int) -> int:
        """The node hosting a partition."""
        return pid // self.partitions_per_node

    def resolve_target(self, trav: Traverser, routed: Optional[int]) -> int:
        """The partition a traverser should execute on."""
        return resolve_partition(trav, self.graph.partitioner, routed)

    def worker_utilization(self, window_us: Optional[float] = None) -> float:
        """Mean fraction of worker CPU time spent busy over a window.

        Defaults to the full simulated run (``clock.now``). The async
        model's headline advantage over BSP is exactly this number: no
        barrier ever parks a worker that has local work (§II-C2).
        """
        window = window_us if window_us is not None else self.clock.now
        if window <= 0:
            return 0.0
        busy = sum(worker.busy_total for worker in self.workers)
        return busy / (window * len(self.workers))

    def overload_snapshot(self) -> Dict[str, Any]:
        """Observability for the overload layer (bench + leak assertions).

        ``open_stages`` and ``cancelling`` must both be 0 at quiescence —
        a nonzero value is a leaked ledger or a cancellation that never
        finalized. ``peak_inbox_depth`` must stay ≤ ``inbox_capacity``
        when credit gating is armed (the bounded-memory claim).
        """
        gates = self.delivery.gates or []
        stalls = sum(g.stalls for g in gates)
        self.metrics.credit_stalls = stalls
        snap: Dict[str, Any] = {
            "open_stages": self.progress.open_stage_count,
            "cancelling": len(self.delivery.cancelling),
            "active_sessions": len(self.sessions),
            "peak_queue_depth": max(
                (r.peak_queue_depth for r in self.runtimes), default=0
            ),
            "peak_inbox_depth": max(
                (r.peak_inbox_depth for r in self.runtimes), default=0
            ),
            "credit_stalls": stalls,
            "peak_credits_in_use": max((g.peak_in_use for g in gates), default=0),
            "waiting_sends": sum(g.waiting_sends for g in gates),
        }
        if self._admission is not None:
            snap["admission_running"] = self._admission.running
            snap["admission_waiting"] = self._admission.waiting
            snap["admission_peak_waiting"] = self._admission.peak_waiting
        return snap

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Flat counter snapshot with gate-derived counters synced first
        (``credit_stalls`` lives in the gates between syncs)."""
        self.metrics.credit_stalls = sum(
            g.stalls for g in (self.delivery.gates or [])
        )
        return self.metrics.snapshot()

    # -- layer shims --------------------------------------------------------

    @property
    def flush_threshold_bytes(self) -> int:
        """Effective tier-1 flush threshold (workers read this per flush)."""
        return self._flush_threshold

    @property
    def _gates(self):
        """Back-compat alias for the delivery plane's credit gates."""
        return self.delivery.gates

    def tracker_handle(self, msg: Message) -> None:
        """Process one tracker-bound message (delegates to the delivery
        plane; kept on the engine as the tracker actor's stable target)."""
        self.delivery.tracker_handle(msg)

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        plan: PhysicalPlan,
        params: Optional[Dict[str, Any]] = None,
        on_done: Optional[Callable[[QuerySession], None]] = None,
        at: Optional[float] = None,
        time_limit_us: Optional[float] = None,
        priority: int = 0,
    ) -> QuerySession:
        """Submit a query now (or at simulated time ``at``).

        ``time_limit_us`` arms an abort deadline: interactive serving
        systems run under strict budgets (the paper's §II-A example gives a
        search engine ~50 ms — "any queries ... that fail to complete
        within this time limit will simply be aborted"). An aborted query's
        session is torn down (memos cleared, in-flight traversers dropped)
        and its metrics stay incomplete; ``on_done`` still fires so closed
        loops keep moving.

        With admission control armed (``max_concurrent_queries``), the
        submission may instead wait in the bounded admission queue, be shed
        (``rejected``), or expire (``admission_timed_out``); ``priority``
        orders waiters (lower dispatches sooner) and the execution deadline
        counts from dispatch, not submission — the admission wait is bounded
        separately by ``admission_timeout_us``.
        """
        session = QuerySession(
            self, self._next_query_id, plan, dict(params or {}), on_done
        )
        self._next_query_id += 1
        session.priority = priority
        session.time_limit_us = time_limit_us
        if self._admission is not None:
            if at is None:
                self._admit_or_queue(session)
            else:
                self.clock.schedule_at(at, lambda: self._admit_or_queue(session))
            return session
        self.sessions[session.query_id] = session
        session.lifecycle.to(QueryState.ADMITTED)
        session.arrival_us = at if at is not None else self.clock.now
        if at is None:
            self._do_submit(session)
        else:
            self.clock.schedule_at(at, lambda: self._do_submit(session))
        if time_limit_us is not None:
            deadline = (at if at is not None else self.clock.now) + time_limit_us
            self.clock.schedule_at(
                deadline, lambda: self._abort_if_running(session, time_limit_us)
            )
        return session

    # -- admission control -------------------------------------------------

    def _admit_or_queue(self, session: QuerySession) -> None:
        """Route one arriving submission: start, wait, or shed."""
        adm = self._admission
        session.arrival_us = self.clock.now
        if adm.has_slot:
            self._start_admitted(session)
        elif adm.queue_full:
            session.lifecycle.to(QueryState.REJECTED, REASON_QUEUE_FULL)
            self.metrics.queries_rejected += 1
            self.completed[session.query_id] = session
            if session.on_done is not None:
                session.on_done(session)
        else:
            adm.enqueue(session, session.priority)
            adm.maybe_preempt()
            if self.config.admission_timeout_us is not None:
                self.clock.schedule_at(
                    self.clock.now + self.config.admission_timeout_us,
                    lambda: self._admission_expired(session),
                )

    def _start_admitted(self, session: QuerySession) -> None:
        """Take an execution slot and dispatch (or resume) the session."""
        self._admission.acquire()
        if session.lifecycle.state is QueryState.PAUSED:
            session.lifecycle.to(QueryState.ADMITTED)
            resume_session(self, session)
            return
        session.lifecycle.to(QueryState.ADMITTED)
        self.sessions[session.query_id] = session
        self._do_submit(session)
        if session.time_limit_us is not None:
            self.clock.schedule_at(
                self.clock.now + session.time_limit_us,
                lambda: self._abort_if_running(session, session.time_limit_us),
            )

    def _admission_expired(self, session: QuerySession) -> None:
        """Admission deadline passed while the session was still waiting."""
        if not session.parked or session.lifecycle.state is not QueryState.QUEUED:
            return  # dispatched/rejected in time, or re-parked by a pause
        self._admission.withdraw(session)
        session.lifecycle.to(QueryState.REJECTED, REASON_ADMISSION_TIMEOUT)
        self.metrics.admission_timeouts += 1
        self.completed[session.query_id] = session
        if session.on_done is not None:
            session.on_done(session)

    def _retire(self, session: QuerySession) -> None:
        """Single exit point for sessions that held an execution slot:
        record completion, release the admission slot (dispatching the next
        waiter), and fire ``on_done``."""
        if self.checkpoints is not None:
            self.checkpoints.drop(session.query_id)
        self.completed[session.query_id] = session
        if self._admission is not None:
            self._admission.on_closed()
        if session.on_done is not None:
            session.on_done(session)

    def _abort_if_running(self, session: QuerySession, limit_us: float) -> None:
        """Deadline handler: cancel a query that overran its time budget.

        Cooperative in weighted modes — a CANCEL fans out, partitions purge
        and reclaim, and the stage ledger closes by Theorem 1 — so the
        timeout path leaves zero residue on every partition without
        watchdog involvement. See :meth:`_begin_cancel`.
        """
        if self.sessions.get(session.query_id) is not session:
            return  # finished in time
        self._begin_cancel(session, "timeout")

    # -- cancellation & weight reclamation (docs/OVERLOAD.md) ---------------

    def cancel(self, session: QuerySession, reason: str = "caller") -> bool:
        """Cancel an in-flight query (caller abort).

        Returns True when a cancellation was begun, False when the session
        was not running (already finished, rejected, or still waiting for
        admission — a waiter is simply withdrawn).
        """
        if session.lifecycle.state is QueryState.PAUSED:
            cancel_paused(self, session, reason)
            return True
        if session.parked:
            self._admission.withdraw(session)
            session.qmetrics.cancelled = True
            session.qmetrics.cancel_reason = reason
            session.lifecycle.to(QueryState.REJECTED, f"cancelled:{reason}")
            self.metrics.queries_cancelled += 1
            self.completed[session.query_id] = session
            if session.on_done is not None:
                session.on_done(session)
            return True
        if self.sessions.get(session.query_id) is not session:
            return False
        self._begin_cancel(session, reason)
        return True

    # -- voluntary preemption (docs/RECOVERY.md) ----------------------------

    def preempt(self, session: QuerySession, reason: str = "caller") -> bool:
        """Pause a running query at its next certified stage boundary; it
        snapshots, evicts, and later resumes bit-for-bit through admission
        or :meth:`resume`. Requires an armed checkpoint plane; returns
        False when the session cannot pause (docs/RECOVERY.md)."""
        return request_preempt(self, session, reason)

    def resume(self, session: QuerySession) -> bool:
        """Resume a PAUSED query from its boundary snapshot now. False
        unless it is PAUSED (and a slot is free, under admission)."""
        return try_resume(self, session)

    def _begin_cancel(self, session: QuerySession, reason: str) -> None:
        """Start tearing down a running query (timeout / budget / caller).

        In weighted progress modes with outstanding stage weight this is
        **cooperative**: the session leaves ``sessions`` immediately (new
        arrivals for it are discarded), its lifecycle moves to CANCELLING,
        a CANCEL control message fans out to every partition, and each
        partition purges the query's queued / inboxed / buffered
        traversers, reporting their progression weight back to the tracker.
        The stage ledger then closes by the same ``Σ active + finished = 1``
        argument as normal termination (Theorem 1), and
        :meth:`_finalize_cancel` retires the session with provably zero
        residue — no watchdog, no grace timers. Otherwise (naive mode, or
        no open ledger) teardown is immediate and the lifecycle jumps
        straight to its terminal state.
        """
        query_id = session.query_id
        if self.sessions.get(query_id) is not session:
            return  # already finished / cancelled
        session.qmetrics.cancelled = True
        session.qmetrics.cancel_reason = reason
        self.metrics.queries_cancelled += 1
        self.sessions.pop(query_id, None)
        if (
            reason.startswith("budget")
            and self.config.allow_partial_results
            and not session.cursor.finished
            and session.plan.is_final_stage(session.cursor.current)
        ):
            salvage_partial(self, session)
        now = self.clock.now
        stage = session.cursor.current if not session.cursor.finished else -1
        ledger = self.progress.ledger(query_id, stage)
        cooperative = (
            self.config.progress_mode.is_weighted
            and ledger is not None
            and not ledger.terminated
        )
        if not cooperative:
            session.lifecycle.to(
                QueryState.PARTIAL if session._salvaged else QueryState.FAILED,
                reason,
            )
            self.delivery.teardown(session)
            self._retire(session)
            return
        session.lifecycle.to(QueryState.CANCELLING, reason)
        self.delivery.cancelling[query_id] = session
        for pid in range(self.num_partitions):
            self.network.send(
                self.tracker_node,
                self.node_of(pid),
                [
                    Message(
                        MsgKind.CONTROL,
                        pid,
                        ("cancel", query_id, stage),
                        CANCEL_MSG_BYTES,
                        query_id,
                    )
                ],
                now,
            )

    def _finalize_cancel(self, session: QuerySession, stage: int = -1) -> None:
        """The cancelled stage's ledger closed: finish the teardown.

        By this point every partition has processed its CANCEL, all
        reclaimed and still-executing weight has reached the ledger, and
        nothing of the query remains queued or in flight. The remaining
        cleanup (memo stores, stage counts, inflight entry, progress
        state) is idempotent.
        """
        query_id = session.query_id
        if self.delivery.cancelling.pop(query_id, None) is None:
            return
        if self.trace is not None:
            # stage >= 0: the ledger closed by reclamation; -1: crash-forced.
            self.trace.emit(STAGE_CLOSE, query_id, stage=stage,
                            reason="cancelled" if stage >= 0 else "cancel_forced")
        session.lifecycle.to(
            QueryState.PARTIAL if session._salvaged else QueryState.FAILED,
            session.qmetrics.cancel_reason,
        )
        self.delivery.teardown(session)
        self._retire(session)

    # -- dispatch -----------------------------------------------------------

    def _do_submit(self, session: QuerySession) -> None:
        if self.sessions.get(session.query_id) is not session:
            return  # cancelled between admission and a deferred dispatch
        session.lifecycle.to(QueryState.RUNNING)
        now = self.clock.now
        session.qmetrics.submitted_at_us = now
        if self.txnplane is not None and session.snapshot_ts is None:
            # Pin once: a recovery retry re-enters RUNNING but keeps the
            # original version cut, so its rows replay bit-identically.
            self.txnplane.pin(session)
        ready_at = now
        if self.config.per_query_instantiation:
            # Dataflow-style engines (Banyan, GAIA) instantiate every
            # operator in every worker thread before the query can start:
            # each worker pays a parallel setup cost, and the coordinator
            # serially registers the (ops × workers) channel endpoints —
            # the linear-in-threads overhead behind Fig 9's flattening.
            setup = self.cost.operator_instantiation_us * len(session.plan.ops)
            for worker in self.workers:
                worker.add_setup_cost(now, setup)
            coord_setup = (
                self.cost.operator_instantiation_us
                * 0.25
                * len(self.workers)
                * len(session.plan.ops)
            )
            ready_at = self.tracker.charge(now, coord_setup)
        self.progress.open_stage(session.query_id, 0)
        if self.trace is not None:
            self.trace.emit(STAGE_OPEN, session.query_id, stage=0)
        seeds = self._stage0_seeds(session)
        if ready_at > now:
            self.clock.schedule_at(
                ready_at, lambda: self._dispatch_seeds(session, seeds, self.clock.now)
            )
        else:
            self._dispatch_seeds(session, seeds, now)
        self.recovery.arm_watchdog(session)

    def _stage0_seeds(self, session: QuerySession) -> List[Traverser]:
        # Body lives in lifecycle.stage0_seeds; recovery calls this too.
        return stage0_seeds(self, session)

    def _dispatch_seeds(
        self, session: QuerySession, seeds: List[Traverser], now: float
    ) -> None:
        """Route seed traversers from the coordinator to their partitions."""
        if self.trace is not None and seeds:
            self.trace.emit(SEED_DISPATCH, session.query_id,
                            stage=seeds[0].stage, n=len(seeds),
                            weight=sum(t.weight for t in seeds))
        if self.config.progress_mode is ProgressMode.NAIVE_CENTRAL and seeds:
            # The coordinator knows the seed count; no message needed.
            self.progress.add_naive_active(
                session.query_id, seeds[0].stage, len(seeds)
            )
        delivery = self.delivery
        by_pid: Dict[int, List[Traverser]] = {}
        for trav in seeds:
            pid = self.resolve_target(trav, session.machine.route(trav))
            by_pid.setdefault(pid, []).append(trav)
        for pid, travs in by_pid.items():
            size = sum(t.estimated_size_bytes() for t in travs)
            if delivery.track_inflight:
                delivery.note_outbound(session.query_id)
            self.network.send(
                self.tracker_node,
                self.node_of(pid),
                [Message(MsgKind.SEED, pid, travs, size, session.query_id)],
                now,
            )

    # -- stage lifecycle ------------------------------------------------------------------

    def _stage_terminated(self, query_id: int, stage: int) -> None:
        """Weight ledger hit 1: gather the barrier's partials (Fig 6)."""
        cancelling = self.delivery.cancelling.get(query_id)
        if cancelling is not None:
            # A cancelled stage's ledger closed: all outstanding weight was
            # executed or reclaimed, so nothing of the query remains queued,
            # buffered, or in flight — finish the teardown.
            self._finalize_cancel(cancelling, stage)
            return
        session = self.sessions.get(query_id)
        if session is None or session.cursor.current != stage:
            return
        if (
            self.config.progress_mode is ProgressMode.NAIVE_CENTRAL
            and not self.delivery.query_quiescent(query_id, stage)
        ):
            # Transient zero crossing: traversers are still in transit.
            # Their own reports will re-trigger the zero check later.
            return
        barrier = session.cursor.barrier()
        now = self.clock.now
        expected = 0
        for pid, runtime in enumerate(self.runtimes):
            memo = runtime.memo_store.peek(query_id)
            if memo is None:
                continue
            value = barrier.partial(memo)
            if value is None:
                continue
            expected += 1
            size = barrier.estimated_partial_size(value)
            self.network.send(
                self.node_of(pid),
                self.tracker_node,
                [
                    Message(
                        MsgKind.PARTIAL,
                        TRACKER_DST,
                        ("partial", query_id, stage,
                         GatheredPartial(pid, value, size)),
                        size,
                        query_id,
                    )
                ],
                now,
            )
        session.expected_partials = expected
        session.partials = []
        if expected == 0:
            self._complete_stage(session, stage)

    def _complete_stage(self, session: QuerySession, stage: int) -> None:
        if self.sessions.get(session.query_id) is not session:
            return  # cancelled/aborted while the combine event was queued
        if session.cursor.current != stage or session.cursor.finished:
            return
        # The stage's ledger has served its purpose; drop it so late
        # (retransmitted / stale) weight reports resolve to "unknown stage"
        # instead of accumulating terminated ledgers for the query's life.
        self.progress.close_stage(session.query_id, stage)
        if self.trace is not None:
            self.trace.emit(STAGE_CLOSE, session.query_id, stage=stage,
                            reason="terminated")
        seeds = session.cursor.complete_stage(session.partials, session.rng)
        # Vacuously-empty intermediate stages terminate immediately.
        while not seeds and not session.cursor.finished:
            seeds = session.cursor.complete_stage([], session.rng)
        if session.cursor.finished:
            self._finish_query(session)
            return
        if session.lifecycle.state is QueryState.PAUSING:
            # Voluntary yield point: quiescence is certified and the next
            # stage's ledger is not open yet — snapshot the seeds and evict.
            pause_at_boundary(self, session, seeds)
            return
        self.progress.open_stage(session.query_id, session.cursor.current)
        if self.trace is not None:
            self.trace.emit(STAGE_OPEN, session.query_id,
                            stage=session.cursor.current)
        if (
            self.checkpoints is not None
            and session.lifecycle.state is QueryState.RUNNING
        ):
            # The certified quiescent cut: the closed ledger proves no
            # traverser of the query exists anywhere, the next stage's
            # seeds are split but not yet dispatched. The lifecycle fence
            # keeps cancelling/torn-down sessions out of the store.
            self.checkpoints.maybe_snapshot(self, session, seeds)
        self._dispatch_seeds(session, seeds, self.clock.now)

    def _finish_query(self, session: QuerySession) -> None:
        session.lifecycle.to(QueryState.DONE)
        session.qmetrics.completed_at_us = self.clock.now
        session.qmetrics.result_rows = len(session.results)
        for runtime in self.runtimes:
            runtime.memo_store.clear_query(session.query_id)
            runtime.drop_query(session.query_id)
        for worker in self.workers:
            worker.drop_query(session.query_id)
        self.delivery.inflight.pop(session.query_id, None)
        self.progress.close_query(session.query_id)
        self.sessions.pop(session.query_id, None)
        self._retire(session)

    # -- convenience runners ------------------------------------------------------------------

    def run(
        self,
        plan: PhysicalPlan,
        params: Optional[Dict[str, Any]] = None,
        max_events: Optional[int] = None,
        time_limit_us: Optional[float] = None,
    ) -> QueryResult:
        """Submit one query and simulate to completion.

        Raises :class:`~repro.errors.QueryTimeoutError` when
        ``time_limit_us`` is set and the query overruns it.
        """
        session = self.submit(plan, params, time_limit_us=time_limit_us)
        self.clock.run_until_idle(max_events)
        return self.result_of(session, time_limit_us=time_limit_us)

    def result_of(
        self,
        session: QuerySession,
        time_limit_us: Optional[float] = None,
    ) -> QueryResult:
        """Resolve a drained session into a result, or raise its outcome.

        Outcome precedence mirrors the submission lifecycle: shed before
        dispatch (``QueryRejectedError``), expired waiting
        (``AdmissionTimeoutError``), deadline abort (``QueryTimeoutError``),
        budget trip (partial :class:`QueryResult` when salvaged, else
        ``ResourceBudgetExceededError``), caller cancel
        (``QueryCancelledError``), retry exhaustion
        (``RetryBudgetExceededError``). The returned result carries the
        session's terminal lifecycle state.
        """
        if session.rejected:
            raise QueryRejectedError(
                session.query_id, self.config.admission_queue_size
            )
        if session.admission_timed_out:
            raise AdmissionTimeoutError(
                session.query_id, self.config.admission_timeout_us or 0.0
            )
        if session.timed_out:
            limit = (
                time_limit_us
                if time_limit_us is not None
                else (session.time_limit_us or 0)
            )
            raise QueryTimeoutError(session.query_id, limit / 1e3)
        if session.budget_exceeded:
            if session.partial_result:
                return QueryResult(
                    session.results,
                    session.qmetrics.latency_us,
                    session.qmetrics,
                    state=session.lifecycle.state,
                )
            budget, detail = session.budget_error or ("resource", "exceeded")
            raise ResourceBudgetExceededError(session.query_id, budget, detail)
        if session.cancelled:
            raise QueryCancelledError(
                session.query_id, session.cancel_reason or "cancelled"
            )
        if session.failed:
            raise RetryBudgetExceededError(
                session.qmetrics.query_id, session.qmetrics.retries
            )
        if not session.qmetrics.done:
            raise ExecutionError(
                f"query {session.query_id} did not complete (plan "
                f"{session.plan.name!r}); simulation deadlock?"
            )
        return QueryResult(
            session.results,
            session.qmetrics.latency_us,
            session.qmetrics,
            state=session.lifecycle.state,
        )

    def profile(
        self,
        plan: PhysicalPlan,
        params: Optional[Dict[str, Any]] = None,
        max_events: Optional[int] = None,
    ) -> "QueryProfile":
        """EXPLAIN ANALYZE: run a query and return per-operator counts.

        Shows, for every physical operator, how many traversers executed it
        and how many children it spawned — where a query's traverser volume
        actually comes from (e.g. which Expand explodes, how many arrivals
        a Dedup prunes).
        """
        session = self.submit(plan, params)
        self.clock.run_until_idle(max_events)
        if not session.qmetrics.done:
            raise ExecutionError(f"profiled query {session.query_id} incomplete")
        return QueryProfile(
            plan,
            dict(session.op_steps),
            dict(session.op_spawned),
            session.qmetrics,
            session.results,
        )

    def run_closed_loop(
        self,
        make_query: Callable[[int], Tuple[PhysicalPlan, Dict[str, Any]]],
        clients: int,
        total_queries: int,
        max_events: Optional[int] = None,
    ) -> Tuple[float, LatencyRecorder]:
        """Closed-loop throughput: ``clients`` concurrent issuers.

        Returns (queries per second of simulated time, latency recorder).
        """
        recorder = LatencyRecorder()
        state = {"issued": 0, "done": 0}

        def issue() -> None:
            if state["issued"] >= total_queries:
                return
            index = state["issued"]
            state["issued"] += 1
            plan, params = make_query(index)
            self.submit(plan, params, on_done=on_done)

        def on_done(session: QuerySession) -> None:
            state["done"] += 1
            recorder.record(session.qmetrics.latency_us)
            issue()

        for _ in range(min(clients, total_queries)):
            issue()
        start = self.clock.now
        self.clock.run_until_idle(max_events)
        elapsed_us = self.clock.now - start
        if state["done"] != total_queries:
            raise ExecutionError(
                f"closed loop finished {state['done']}/{total_queries} queries"
            )
        qps = total_queries / (elapsed_us / 1e6) if elapsed_us > 0 else float("inf")
        return qps, recorder
