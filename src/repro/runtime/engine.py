"""The asynchronous PSTM engine — GraphDance's runtime (paper §IV).

:class:`AsyncPSTMEngine` executes compiled plans on a simulated cluster:

* one single-threaded :class:`~repro.runtime.worker.Worker` per partition
  (shared-nothing; the non-partitioned baseline attaches several workers to
  one shared per-node partition instead);
* two-tier message passing (:mod:`repro.runtime.network`);
* weight-based progress tracking with optional coalescing
  (:mod:`repro.core.progress`), hosted on a centralized tracker actor;
* staged aggregation with distributed partials gathered at the coordinator
  (:mod:`repro.core.subquery`).

Queries run **for real** — every operator touches real partitioned data and
the result rows are exact; the simulation only decides *when* things happen,
which is what the paper's evaluation measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.machine import PSTMMachine, resolve_partition
from repro.core.memo import MemoStore
from repro.core.progress import ProgressMode, ProgressTracker
from repro.core.steps import FixedVertexSource, StepContext
from repro.core.subquery import GatheredPartial, StageCursor
from repro.core.traverser import Traverser, make_root
from repro.core.weight import GROUP_MODULUS, ROOT_WEIGHT, split_weight
from repro.errors import (
    AdmissionTimeoutError,
    ConfigurationError,
    ExecutionError,
    QueryCancelledError,
    QueryRejectedError,
    QueryTimeoutError,
    ResourceBudgetExceededError,
    RetryBudgetExceededError,
)
from repro.graph.partition import PartitionedGraph
from repro.query.plan import PhysicalPlan
from repro.runtime.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    HardwareProfile,
    MODERN,
    validate_cluster,
)
from repro.runtime.faults import CRASH, FaultInjector, FaultPlan, WorkerFault
from repro.runtime.metrics import LatencyRecorder, MsgKind, QueryMetrics, RunMetrics
from repro.runtime.network import TRACKER_DST, Message, Network
from repro.runtime.overload import AdmissionController, CreditGate
from repro.runtime.simclock import SimClock
from repro.runtime.worker import PartitionRuntime, TrackerActor, Worker

#: I/O scheduler configurations of Fig 12.
IO_SYNC = "sync"          # no batching: every message is its own packet
IO_TLC = "tlc"            # thread-level combining only
IO_TLC_NLC = "tlc+nlc"    # full two-tier scheduler (default)

#: wire size of one CANCEL control message (tag + query id + stage)
CANCEL_MSG_BYTES = 16

#: memo-byte budgets are checked every Nth worker run per query: the memo
#: walk is O(records), so sampling keeps enforcement off the hot path while
#: still bounding the overshoot to a few runs' worth of growth.
MEMO_CHECK_INTERVAL = 16


@dataclass(frozen=True)
class EngineConfig:
    """Behavioral switches for the async engine and its baselines."""

    name: str = "graphdance"
    progress_mode: ProgressMode = ProgressMode.WEIGHTED_COALESCED
    io_mode: str = IO_TLC_NLC
    flush_threshold_bytes: int = 8192
    batch_size: int = 64
    #: False → the non-partitioned baseline: one shared state per node
    partitioned_state: bool = True
    #: dataflow-style per-(op × worker) query setup cost (Banyan/GAIA)
    per_query_instantiation: bool = False
    #: route all aggregation traversers to partition 0 (GAIA)
    centralized_agg: bool = False
    #: compute scaling (hand-optimized single-node plugins use < 1)
    cpu_scale: float = 1.0
    #: True → run the reference one-traverser-at-a-time worker loop instead
    #: of the batched kernels. Simulated results are identical either way
    #: (the equivalence suite asserts it); scalar exists for verification
    #: and debugging, batched is the default because it is much faster in
    #: wall-clock terms.
    scalar_execution: bool = False
    #: fault schedule for chaos runs (None → perfect network, immortal
    #: workers, and a send path bit-identical to the pre-fault engine).
    #: Arming a plan also arms the ack/retransmit layer and the watchdog.
    fault_plan: Optional[FaultPlan] = None
    #: how many times the watchdog may re-execute a stuck query before the
    #: engine gives up with RetryBudgetExceededError
    retry_budget: int = 3
    #: a query showing zero progress for this long is declared stuck and
    #: recovered (only armed when fault_plan is set)
    watchdog_timeout_us: float = 100_000.0
    # -- overload protection (docs/OVERLOAD.md; all default to "off" so the
    # -- default config stays bit-for-bit identical to the pre-overload
    # -- engine, which the equivalence suites assert) ----------------------
    #: at most this many queries execute concurrently; excess submissions
    #: wait in the admission queue (None → admission control disabled)
    max_concurrent_queries: Optional[int] = None
    #: bounded admission queue: submissions beyond this many waiters are
    #: shed immediately with QueryRejectedError
    admission_queue_size: int = 64
    #: a waiter still undispatched after this long fails with
    #: AdmissionTimeoutError (None → waiters never expire)
    admission_timeout_us: Optional[float] = None
    #: per-query spawn budget: a query spawning more traversers than this
    #: is cancelled with ResourceBudgetExceededError (None → unbounded)
    max_traversers_per_query: Optional[int] = None
    #: per-query memo budget across all partitions, in modelled bytes
    #: (None → unbounded)
    max_memo_bytes_per_query: Optional[int] = None
    #: per-partition bound on in-flight + inboxed remote traversers; arms
    #: credit-based sender throttling (None → unbounded, classic path)
    inbox_capacity: Optional[int] = None
    #: budget-cancelled queries whose final stage already holds partials
    #: return those partial rows (flagged degraded) instead of raising
    allow_partial_results: bool = False

    def __post_init__(self) -> None:
        if self.io_mode not in (IO_SYNC, IO_TLC, IO_TLC_NLC):
            raise ConfigurationError(f"unknown io_mode {self.io_mode!r}")
        for name in ("max_concurrent_queries", "max_traversers_per_query",
                     "max_memo_bytes_per_query", "inbox_capacity"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(f"{name} must be >= 1, got {value}")
        if self.admission_queue_size < 1:
            raise ConfigurationError(
                f"admission_queue_size must be >= 1, "
                f"got {self.admission_queue_size}"
            )
        if self.admission_timeout_us is not None and self.admission_timeout_us <= 0:
            raise ConfigurationError(
                f"admission_timeout_us must be > 0, "
                f"got {self.admission_timeout_us}"
            )
        if self.fault_plan is not None:
            if self.progress_mode is ProgressMode.NAIVE_CENTRAL:
                # Naive active counters cannot survive loss: a dropped
                # delta corrupts the count forever, and the weight ledger
                # the recovery protocol leans on does not exist.
                raise ConfigurationError(
                    "fault injection requires a weighted progress mode; "
                    "NAIVE_CENTRAL counters cannot detect lost work"
                )
            if self.retry_budget < 0:
                raise ConfigurationError(
                    f"retry_budget must be >= 0, got {self.retry_budget}"
                )
            if self.watchdog_timeout_us <= 0:
                raise ConfigurationError(
                    f"watchdog_timeout_us must be > 0, "
                    f"got {self.watchdog_timeout_us}"
                )
            # Re-validate the plan's rates here as well: FaultPlan checks
            # its own fields at construction, but plans minted through
            # object.__setattr__ tricks or pickled from older versions can
            # reach the engine unvalidated — and a negative rate turns the
            # injector's RNG comparisons into silent no-ops or certainties.
            plan = self.fault_plan
            for name in ("drop_rate", "dup_rate", "delay_rate",
                         "ack_drop_rate"):
                rate = getattr(plan, name)
                if not 0.0 <= rate < 1.0:
                    raise ConfigurationError(
                        f"fault_plan.{name} must be in [0, 1), got {rate}"
                    )
            if plan.delay_us < 0:
                raise ConfigurationError(
                    f"fault_plan.delay_us must be >= 0, got {plan.delay_us}"
                )


@dataclass
class QueryResult:
    """Outcome of one query run."""

    rows: List[Any]
    latency_us: float
    metrics: QueryMetrics
    #: True when a budget cancellation salvaged final-stage partials: the
    #: rows are an exact subset of the full answer (docs/OVERLOAD.md)
    partial: bool = False

    @property
    def latency_ms(self) -> float:
        """Simulated latency in milliseconds."""
        return self.latency_us / 1000.0

    @property
    def degraded(self) -> bool:
        """True when the rows come from a crash-recovery re-execution.

        The answer is still exact (the retry starts from invalidated
        memos), but the latency includes the lost attempt(s).
        """
        return self.metrics.degraded


@dataclass
class QueryProfile:
    """EXPLAIN ANALYZE output: per-operator execution statistics."""

    plan: PhysicalPlan
    op_steps: Dict[int, int]
    op_spawned: Dict[int, int]
    metrics: QueryMetrics
    rows: List[Any]

    def steps_of(self, op_idx: int) -> int:
        """Traversers that executed the operator at ``op_idx``."""
        return self.op_steps.get(op_idx, 0)

    def spawned_of(self, op_idx: int) -> int:
        """Children produced by the operator at ``op_idx``."""
        return self.op_spawned.get(op_idx, 0)

    def hottest(self, k: int = 3) -> List[int]:
        """Operator indexes by descending execution count."""
        return sorted(self.op_steps, key=lambda i: -self.op_steps[i])[:k]

    def render(self) -> str:
        """Per-operator table aligned with ``plan.describe()``."""
        lines = [f"profile of {self.plan.name!r} "
                 f"({self.metrics.latency_us / 1000:.3f} ms simulated, "
                 f"{self.metrics.steps_executed} steps)"]
        for op in self.plan.ops:
            executed = self.op_steps.get(op.idx, 0)
            spawned = self.op_spawned.get(op.idx, 0)
            marker = "*" if op.is_barrier else " "
            lines.append(
                f"  [{op.idx:>2}]{marker} {op.name:<32} "
                f"executed={executed:<8d} spawned={spawned}"
            )
        return "\n".join(lines)


class QuerySession:
    """Runtime state of one in-flight query."""

    def __init__(
        self,
        engine: "AsyncPSTMEngine",
        query_id: int,
        plan: PhysicalPlan,
        params: Dict[str, Any],
        on_done: Optional[Callable[["QuerySession"], None]],
    ) -> None:
        self.engine = engine
        self.query_id = query_id
        self.plan = plan
        self.params = params
        self.on_done = on_done
        self.machine = PSTMMachine(
            plan,
            engine.graph.partitioner,
            barrier_route=0 if engine.config.centralized_agg else None,
        )
        self.rng = random.Random((engine.seed << 20) ^ query_id)
        self.cursor = StageCursor(plan, query_id)
        self.qmetrics = QueryMetrics(query_id, plan.name, submitted_at_us=0.0)
        self._contexts: List[Optional[StepContext]] = [None] * engine.num_partitions
        self.expected_partials = 0
        self.partials: List[GatheredPartial] = []
        #: set when the query was aborted by its time limit (§II-A)
        self.timed_out = False
        #: set when crash recovery exhausted the retry budget
        self.failed = False
        # -- overload-protection state (docs/OVERLOAD.md) ------------------
        #: set when the admission queue was full at submission (shed)
        self.rejected = False
        #: set when the admission deadline passed before dispatch
        self.admission_timed_out = False
        #: True while parked in the admission wait queue
        self.admission_waiting = False
        #: admission priority (lower dispatches sooner)
        self.priority = 0
        #: per-query deadline, armed when the session is dispatched
        self.time_limit_us: Optional[float] = None
        #: simulated submission instant (before any admission wait)
        self.arrival_us = 0.0
        #: set when a cancellation was begun (timeout / budget / caller)
        self.cancelled = False
        self.cancel_reason: Optional[str] = None
        #: set when a resource budget tripped the cancellation
        self.budget_exceeded = False
        self.budget_error: Optional[Tuple[str, str]] = None  # (budget, detail)
        #: set when a budget cancellation salvaged final-stage partials
        self.partial_result = False
        #: sampling phase for the memo-byte budget check
        self._memo_check_tick = 0
        #: per-operator execution counts (op index → traversers executed),
        #: the EXPLAIN ANALYZE data behind :meth:`AsyncPSTMEngine.profile`
        self.op_steps: Dict[int, int] = {}
        #: per-operator spawn counts (op index → children produced)
        self.op_spawned: Dict[int, int] = {}

    def context(self, pid: int) -> StepContext:
        """The query's StepContext on one partition (lazy)."""
        ctx = self._contexts[pid]
        if ctx is None:
            runtime = self.engine.runtimes[pid]
            ctx = StepContext(
                runtime.store,
                runtime.memo_store.for_query(self.query_id),
                self.engine.graph.partitioner,
                self.params,
            )
            self._contexts[pid] = ctx
        return ctx

    @property
    def results(self) -> List[Any]:
        if self.cursor.results is None:
            raise ExecutionError(f"query {self.query_id} has not finished")
        return self.cursor.results


class AsyncPSTMEngine:
    """GraphDance: asynchronous distributed PSTM execution (simulated)."""

    def __init__(
        self,
        graph: PartitionedGraph,
        nodes: int,
        workers_per_node: int,
        hardware: HardwareProfile = MODERN,
        cost_model: Optional[CostModel] = None,
        config: EngineConfig = EngineConfig(),
        seed: int = 0,
    ) -> None:
        validate_cluster(nodes, workers_per_node, hardware)
        expected = nodes * workers_per_node if config.partitioned_state else nodes
        if graph.num_partitions != expected:
            raise ConfigurationError(
                f"{config.name}: graph has {graph.num_partitions} partitions "
                f"but this configuration needs {expected} "
                f"({nodes} nodes × {workers_per_node} workers, "
                f"partitioned_state={config.partitioned_state})"
            )
        self.graph = graph
        self.nodes = nodes
        self.workers_per_node = workers_per_node
        self.config = config
        self.seed = seed
        base_cost = cost_model or DEFAULT_COST_MODEL
        self.cost = replace(
            base_cost.with_hardware(hardware), cpu_scale=config.cpu_scale
        )
        self.num_partitions = graph.num_partitions
        self.partitions_per_node = self.num_partitions // nodes

        self.clock = SimClock()
        self.metrics = RunMetrics()
        #: fault source (None → no faults, no reliability layer, no watchdog)
        self.faults: Optional[FaultInjector] = (
            FaultInjector(config.fault_plan) if config.fault_plan is not None
            else None
        )
        self.network = Network(
            self.clock,
            nodes,
            self.cost,
            self.metrics,
            self._deliver,
            node_combining=(config.io_mode == IO_TLC_NLC),
            faults=self.faults,
            on_retransmit=self._note_retransmit,
            on_packet_fault=self._note_packet_fault,
        )
        # Effective tier-1 flush threshold: IO_SYNC flushes every message.
        self._flush_threshold = (
            1 if config.io_mode == IO_SYNC else config.flush_threshold_bytes
        )

        self.runtimes: List[PartitionRuntime] = [
            PartitionRuntime(p, graph.stores[p], MemoStore(p))
            for p in range(self.num_partitions)
        ]
        self.workers: List[Worker] = []
        if config.partitioned_state:
            for pid in range(self.num_partitions):
                self.workers.append(
                    Worker(self, pid, self.node_of(pid), self.runtimes[pid])
                )
        else:
            wid = 0
            for node in range(nodes):
                for _ in range(workers_per_node):
                    self.workers.append(Worker(self, wid, node, self.runtimes[node]))
                    wid += 1

        self.tracker_node = 0
        self.tracker = TrackerActor(self)
        self.progress = ProgressTracker(config.progress_mode, self._stage_terminated)
        self.sessions: Dict[int, QuerySession] = {}
        self.completed: Dict[int, QuerySession] = {}
        self._next_query_id = 0
        # -- overload protection (all None/False for default configs, so the
        # -- hot paths see one falsy check and stay bit-identical) ----------
        #: queries mid-cancellation: cancelled but their stage ledger has
        #: not yet re-absorbed all outstanding progression weight
        self._cancelling: Dict[int, QuerySession] = {}
        self._admission: Optional[AdmissionController] = (
            AdmissionController(
                self, config.max_concurrent_queries, config.admission_queue_size
            )
            if config.max_concurrent_queries is not None
            else None
        )
        self._gates: Optional[List[CreditGate]] = (
            [
                CreditGate(pid, config.inbox_capacity, self.clock)
                for pid in range(self.num_partitions)
            ]
            if config.inbox_capacity is not None
            else None
        )
        self._budgets_armed = (
            config.max_traversers_per_query is not None
            or config.max_memo_bytes_per_query is not None
        )
        # Worker-bound traversers buffered or in flight, per query. Only the
        # naive progress mode needs this (its active counter can transiently
        # hit zero while traversers are in transit); weighted modes skip the
        # bookkeeping entirely.
        self._inflight: Dict[int, int] = {}
        self.track_inflight = config.progress_mode is ProgressMode.NAIVE_CENTRAL
        if config.fault_plan is not None:
            for wf in config.fault_plan.worker_faults:
                if not 0 <= wf.wid < len(self.workers):
                    raise ConfigurationError(
                        f"worker fault targets wid {wf.wid}, but this "
                        f"cluster has {len(self.workers)} workers"
                    )
                self.clock.schedule_at(
                    wf.at_us, lambda f=wf: self._inject_worker_fault(f)
                )

    # -- topology -----------------------------------------------------------

    def node_of(self, pid: int) -> int:
        """The node hosting a partition."""
        return pid // self.partitions_per_node

    def resolve_target(self, trav: Traverser, routed: Optional[int]) -> int:
        """The partition a traverser should execute on."""
        return resolve_partition(trav, self.graph.partitioner, routed)

    def worker_utilization(self, window_us: Optional[float] = None) -> float:
        """Mean fraction of worker CPU time spent busy over a window.

        Defaults to the full simulated run (``clock.now``). The async
        model's headline advantage over BSP is exactly this number: no
        barrier ever parks a worker that has local work (§II-C2).
        """
        window = window_us if window_us is not None else self.clock.now
        if window <= 0:
            return 0.0
        busy = sum(worker.busy_total for worker in self.workers)
        return busy / (window * len(self.workers))

    def overload_snapshot(self) -> Dict[str, Any]:
        """Observability for the overload layer (bench + leak assertions).

        ``open_stages`` and ``cancelling`` must both be 0 at quiescence —
        a nonzero value is a leaked ledger or a cancellation that never
        finalized. ``peak_inbox_depth`` must stay ≤ ``inbox_capacity``
        when credit gating is armed (the bounded-memory claim).
        """
        gates = self._gates or []
        stalls = sum(g.stalls for g in gates)
        self.metrics.credit_stalls = stalls
        snap: Dict[str, Any] = {
            "open_stages": self.progress.open_stage_count,
            "cancelling": len(self._cancelling),
            "active_sessions": len(self.sessions),
            "peak_queue_depth": max(
                (r.peak_queue_depth for r in self.runtimes), default=0
            ),
            "peak_inbox_depth": max(
                (r.peak_inbox_depth for r in self.runtimes), default=0
            ),
            "credit_stalls": stalls,
            "peak_credits_in_use": max((g.peak_in_use for g in gates), default=0),
            "waiting_sends": sum(g.waiting_sends for g in gates),
        }
        if self._admission is not None:
            snap["admission_running"] = self._admission.running
            snap["admission_waiting"] = self._admission.waiting
            snap["admission_peak_waiting"] = self._admission.peak_waiting
        return snap

    def note_outbound(self, query_id: int) -> None:
        """Record a worker-bound message entering a buffer or the network."""
        self._inflight[query_id] = self._inflight.get(query_id, 0) + 1

    def _query_quiescent(self, query_id: int, stage: int) -> bool:
        """True when no traverser of this (query, stage) exists anywhere:
        not queued, not buffered, not in flight."""
        if self._inflight.get(query_id, 0) > 0:
            return False
        return all(
            runtime.stage_counts.get((query_id, stage), 0) <= 0
            for runtime in self.runtimes
        )

    # -- fault injection & recovery ------------------------------------------

    def _inject_worker_fault(self, wf: WorkerFault) -> None:
        """Fire one scheduled worker crash/stall from the fault plan.

        A crash loses the worker's core-resident state (run queue, tier-1
        buffers, weight accumulators) and invalidates the partition's memos,
        so every query holding state there is immediately forced through
        :meth:`_recover_query` — waiting for the watchdog would risk a query
        completing with corrupted memo state (e.g. a Dedup set silently
        reset). A stall just freezes the worker; its state and weights
        survive, so no recovery is needed.
        """
        worker = self.workers[wf.wid]
        now = self.clock.now
        self.faults.note_worker_fault(wf.kind)
        if wf.kind == CRASH:
            self.metrics.worker_crashes += 1
            runtime = worker.runtime
            affected = set(runtime.memo_store.invalidate_all())
            affected.update(t.query_id for t in runtime.queue)
            affected.update(t.query_id for t in runtime.inbox)
            affected.update(key[0] for key in worker._accums)
            for pairs in worker._trav_buffers.values():
                affected.update(t.query_id for _pid, t, _size in pairs)
            for msgs in worker._buffers.values():
                affected.update(m.query_id for m in msgs if m.query_id >= 0)
            worker.crash()
            for query_id in affected:
                session = self.sessions.get(query_id)
                if session is not None and session.query_id == query_id:
                    # Defer so one crash handler never recurses into seed
                    # dispatch while still iterating engine state.
                    self.clock.schedule_at(
                        now,
                        lambda s=session, q=query_id: self._recover_if_current(s, q),
                    )
                    continue
                cancelling = self._cancelling.get(query_id)
                if cancelling is not None:
                    # The crash destroyed reclaimed-weight the cancelled
                    # stage's ledger was waiting on; it can never close now.
                    # Force the finalize — the teardown is idempotent and
                    # late arrivals resolve to a dead session.
                    self.clock.schedule_at(
                        now, lambda s=cancelling: self._finalize_cancel(s)
                    )
        else:
            self.metrics.worker_stalls += 1
            worker.stall()
        if wf.down_us is not None:
            self.clock.schedule_at(
                now + wf.down_us, lambda w=worker: w.recover(self.clock.now)
            )

    def _recover_if_current(self, session: QuerySession, query_id: int) -> None:
        """Run recovery only if this attempt is still the live one."""
        if self.sessions.get(query_id) is session and session.query_id == query_id:
            self._recover_query(session)

    def _note_retransmit(self, messages: List[Message]) -> None:
        """Attribute one packet retransmission to its queries' metrics."""
        for query_id in {m.query_id for m in messages if m.query_id >= 0}:
            session = self.sessions.get(query_id)
            if session is not None:
                session.qmetrics.retransmits += 1

    def _note_packet_fault(self, kind: str, messages: List[Message]) -> None:
        """Attribute one injected packet fault to its queries' metrics."""
        for query_id in {m.query_id for m in messages if m.query_id >= 0}:
            session = self.sessions.get(query_id)
            if session is not None:
                session.qmetrics.faults_injected += 1

    def _arm_watchdog(self, session: QuerySession) -> None:
        """Schedule the next stuck-query check for one attempt.

        The watchdog is the loss detector of docs/FAULTS.md: if a query's
        progress fingerprint — current stage, the stage ledger's received
        weight sum, executed steps, gathered partials — is unchanged after
        a full timeout window, some progression weight has left the system
        (crashed worker, exhausted transport) and the stage ledger can
        never reach the root weight. Only armed when a fault plan exists.
        """
        if self.faults is None:
            return
        snapshot = self._progress_snapshot(session)
        self.clock.schedule_at(
            self.clock.now + self.config.watchdog_timeout_us,
            lambda s=session, snap=snapshot: self._watchdog_check(s, snap),
        )

    def _progress_snapshot(self, session: QuerySession) -> Tuple:
        """Fingerprint of a query attempt's observable progress."""
        query_id = session.query_id
        stage = session.cursor.current if not session.cursor.finished else -1
        ledger = self.progress.ledger(query_id, stage)
        return (
            query_id,
            stage,
            None if ledger is None else ledger.received,
            session.qmetrics.steps_executed,
            len(session.partials),
        )

    def _watchdog_check(self, session: QuerySession, snapshot: Tuple) -> None:
        """Compare fingerprints; recover the query if nothing moved."""
        query_id = snapshot[0]
        if self.sessions.get(query_id) is not session or session.query_id != query_id:
            return  # finished, aborted, or already retried under a new id
        fresh = self._progress_snapshot(session)
        if fresh != snapshot:
            self.clock.schedule_at(
                self.clock.now + self.config.watchdog_timeout_us,
                lambda s=session, snap=fresh: self._watchdog_check(s, snap),
            )
            return
        self._recover_query(session)

    def _recover_query(self, session: QuerySession) -> None:
        """Re-execute a stuck query under a fresh query id (bounded).

        The abandoned attempt is torn down completely — per-partition memos
        invalidated, queued traversers purged, progress state closed — and
        the query restarts from its stage-0 seeds. The fresh attempt gets a
        **new query id**, so anything of the old attempt still in flight
        (buffered traversers, retransmitted packets, stale weight reports)
        resolves to a dead session on arrival and is discarded instead of
        contaminating the retry. Budget exhaustion marks the session failed;
        :meth:`run` surfaces that as RetryBudgetExceededError.
        """
        old_query_id = session.query_id
        for runtime in self.runtimes:
            runtime.memo_store.clear_query(old_query_id)
            # _purge_partition (not raw purge_query): inboxed traversers of
            # the abandoned attempt hold sender credits that must flow back.
            self._purge_partition(runtime, old_query_id)
        self._inflight.pop(old_query_id, None)
        self.progress.close_query(old_query_id)
        self.sessions.pop(old_query_id, None)
        if session.qmetrics.retries >= self.config.retry_budget:
            session.failed = True
            self._retire(session)
            return
        session.qmetrics.retries += 1
        self.metrics.query_retries += 1
        new_query_id = self._next_query_id
        self._next_query_id += 1
        session.query_id = new_query_id
        session.cursor = StageCursor(session.plan, new_query_id)
        session.rng = random.Random((self.seed << 20) ^ new_query_id)
        session._contexts = [None] * self.num_partitions
        session.partials = []
        session.expected_partials = 0
        self.sessions[new_query_id] = session
        self.progress.open_stage(new_query_id, 0)
        self._dispatch_seeds(session, self._stage0_seeds(session), self.clock.now)
        self._arm_watchdog(session)

    # Worker-facing config shims -----------------------------------------------

    @property
    def flush_threshold_bytes(self) -> int:
        return self._flush_threshold

    # -- submission ---------------------------------------------------------------

    def submit(
        self,
        plan: PhysicalPlan,
        params: Optional[Dict[str, Any]] = None,
        on_done: Optional[Callable[[QuerySession], None]] = None,
        at: Optional[float] = None,
        time_limit_us: Optional[float] = None,
        priority: int = 0,
    ) -> QuerySession:
        """Submit a query now (or at simulated time ``at``).

        ``time_limit_us`` arms an abort deadline: interactive serving
        systems run under strict budgets (the paper's §II-A example gives a
        search engine ~50 ms — "any queries ... that fail to complete
        within this time limit will simply be aborted"). An aborted query's
        session is torn down (memos cleared, in-flight traversers dropped)
        and its metrics stay incomplete; ``on_done`` still fires so closed
        loops keep moving.

        With admission control armed (``max_concurrent_queries``), the
        submission may instead wait in the bounded admission queue, be shed
        (``rejected``), or expire (``admission_timed_out``); ``priority``
        orders waiters (lower dispatches sooner) and the execution deadline
        counts from dispatch, not submission — the admission wait is bounded
        separately by ``admission_timeout_us``.
        """
        session = QuerySession(
            self, self._next_query_id, plan, dict(params or {}), on_done
        )
        self._next_query_id += 1
        session.priority = priority
        session.time_limit_us = time_limit_us
        if self._admission is not None:
            if at is None:
                self._admit_or_queue(session)
            else:
                self.clock.schedule_at(at, lambda: self._admit_or_queue(session))
            return session
        self.sessions[session.query_id] = session
        session.arrival_us = at if at is not None else self.clock.now
        if at is None:
            self._do_submit(session)
        else:
            self.clock.schedule_at(at, lambda: self._do_submit(session))
        if time_limit_us is not None:
            deadline = (at if at is not None else self.clock.now) + time_limit_us
            self.clock.schedule_at(
                deadline, lambda: self._abort_if_running(session, time_limit_us)
            )
        return session

    # -- admission control -------------------------------------------------

    def _admit_or_queue(self, session: QuerySession) -> None:
        """Route one arriving submission: start, wait, or shed."""
        adm = self._admission
        session.arrival_us = self.clock.now
        if adm.has_slot:
            self._start_admitted(session)
        elif adm.queue_full:
            session.rejected = True
            self.metrics.queries_rejected += 1
            self.completed[session.query_id] = session
            if session.on_done is not None:
                session.on_done(session)
        else:
            adm.enqueue(session, session.priority)
            if self.config.admission_timeout_us is not None:
                self.clock.schedule_at(
                    self.clock.now + self.config.admission_timeout_us,
                    lambda: self._admission_expired(session),
                )

    def _start_admitted(self, session: QuerySession) -> None:
        """Take an execution slot and dispatch the session."""
        self._admission.acquire()
        self.sessions[session.query_id] = session
        self._do_submit(session)
        if session.time_limit_us is not None:
            self.clock.schedule_at(
                self.clock.now + session.time_limit_us,
                lambda: self._abort_if_running(session, session.time_limit_us),
            )

    def _admission_expired(self, session: QuerySession) -> None:
        """Admission deadline passed while the session was still waiting."""
        if not session.admission_waiting:
            return  # dispatched (or rejected) in time
        self._admission.withdraw(session)
        session.admission_timed_out = True
        self.metrics.admission_timeouts += 1
        self.completed[session.query_id] = session
        if session.on_done is not None:
            session.on_done(session)

    def _retire(self, session: QuerySession) -> None:
        """Single exit point for sessions that held an execution slot:
        record completion, release the admission slot (dispatching the next
        waiter), and fire ``on_done``."""
        self.completed[session.query_id] = session
        if self._admission is not None:
            self._admission.on_closed()
        if session.on_done is not None:
            session.on_done(session)

    def _abort_if_running(self, session: QuerySession, limit_us: float) -> None:
        """Deadline handler: cancel a query that overran its time budget.

        Cooperative in weighted modes — a CANCEL fans out, partitions purge
        and reclaim, and the stage ledger closes by Theorem 1 — so the
        timeout path leaves zero residue on every partition without
        watchdog involvement. See :meth:`_begin_cancel`.
        """
        if self.sessions.get(session.query_id) is not session:
            return  # finished in time
        session.timed_out = True
        self._begin_cancel(session, "timeout")

    # -- cancellation & weight reclamation (docs/OVERLOAD.md) ---------------

    def cancel(self, session: QuerySession, reason: str = "caller") -> bool:
        """Cancel an in-flight query (caller abort).

        Returns True when a cancellation was begun, False when the session
        was not running (already finished, rejected, or still waiting for
        admission — a waiter is simply withdrawn).
        """
        if session.admission_waiting:
            self._admission.withdraw(session)
            session.cancelled = True
            session.cancel_reason = reason
            session.qmetrics.cancelled = True
            session.qmetrics.cancel_reason = reason
            self.metrics.queries_cancelled += 1
            self.completed[session.query_id] = session
            if session.on_done is not None:
                session.on_done(session)
            return True
        if self.sessions.get(session.query_id) is not session:
            return False
        self._begin_cancel(session, reason)
        return True

    def _begin_cancel(self, session: QuerySession, reason: str) -> None:
        """Start tearing down a running query (timeout / budget / caller).

        In weighted progress modes with outstanding stage weight this is
        **cooperative**: the session leaves ``sessions`` immediately (new
        arrivals for it are discarded), a CANCEL control message fans out
        to every partition, and each partition purges the query's queued /
        inboxed / buffered traversers, reporting their progression weight
        back to the tracker. The stage ledger then closes by the same
        ``Σ active + finished = 1`` argument as normal termination
        (Theorem 1), and :meth:`_finalize_cancel` retires the session with
        provably zero residue — no watchdog, no grace timers. Otherwise
        (naive mode, or no open ledger) teardown is immediate.
        """
        query_id = session.query_id
        if self.sessions.get(query_id) is not session:
            return  # already finished / cancelled
        session.cancelled = True
        session.cancel_reason = reason
        session.qmetrics.cancelled = True
        session.qmetrics.cancel_reason = reason
        self.metrics.queries_cancelled += 1
        self.sessions.pop(query_id, None)
        if (
            reason.startswith("budget")
            and self.config.allow_partial_results
            and not session.cursor.finished
            and session.plan.is_final_stage(session.cursor.current)
        ):
            self._salvage_partial(session)
        now = self.clock.now
        stage = session.cursor.current if not session.cursor.finished else -1
        ledger = self.progress.ledger(query_id, stage)
        cooperative = (
            self.config.progress_mode.is_weighted
            and ledger is not None
            and not ledger.terminated
        )
        if not cooperative:
            self._teardown_query(session)
            self._retire(session)
            return
        self._cancelling[query_id] = session
        for pid in range(self.num_partitions):
            self.network.send(
                self.tracker_node,
                self.node_of(pid),
                [
                    Message(
                        MsgKind.CONTROL,
                        pid,
                        ("cancel", query_id, stage),
                        CANCEL_MSG_BYTES,
                        query_id,
                    )
                ],
                now,
            )

    def _salvage_partial(self, session: QuerySession) -> None:
        """Best-effort partial result for a budget-cancelled final stage.

        The final stage's barrier partials that already exist in partition
        memos are gathered synchronously (no messages — the query is being
        torn down, modelling its latency is pointless) and finalized into
        rows flagged ``partial``. Degraded-mode answer, exact subset.
        """
        query_id = session.query_id
        stage = session.cursor.current
        barrier = session.cursor.barrier()
        gathered: List[GatheredPartial] = []
        for pid, runtime in enumerate(self.runtimes):
            memo = runtime.memo_store.peek(query_id)
            if memo is None:
                continue
            value = barrier.partial(memo)
            if value is None:
                continue
            gathered.append(
                GatheredPartial(pid, value, barrier.estimated_partial_size(value))
            )
        session.cursor.complete_stage(gathered, session.rng)
        if session.cursor.finished:
            session.partial_result = True
            session.qmetrics.completed_at_us = self.clock.now
            session.qmetrics.result_rows = len(session.cursor.results or [])

    def _purge_partition(self, runtime: PartitionRuntime, query_id: int) -> Tuple[int, int]:
        """Purge one partition's queue + inbox for a query, releasing the
        inboxed traversers' sender credits. Returns (weight, n_purged)."""
        weight, n_queue, n_inbox = runtime.reclaim_query(query_id)
        if n_inbox and self._gates is not None:
            self._gates[runtime.pid].release(n_inbox)
        return weight, n_queue + n_inbox

    def _cancel_at_partition(self, query_id: int, stage: int, pid: int) -> None:
        """CANCEL arrival at one partition: purge, reclaim, report.

        Every unit of the query's progression weight resident here —
        queued, inboxed, buffered in worker tier-1 buffers, or absorbed
        into weight accumulators — is removed exactly once and reported
        straight to the tracker (a costless control-plane shortcut: the
        cancel fan-out already paid the wire, and a reclamation report has
        no ordering hazard since the ledger only sums).
        """
        runtime = self.runtimes[pid]
        runtime.memo_store.clear_query(query_id)
        weight, n = self._purge_partition(runtime, query_id)
        for worker in self.workers:
            if worker.runtime is runtime:
                w_weight, w_n = worker.reclaim_query(query_id)
                weight = (weight + w_weight) % GROUP_MODULUS
                n += w_n
        if n:
            self.metrics.traversers_reclaimed += n
            session = self._cancelling.get(query_id)
            if session is not None:
                session.qmetrics.traversers_reclaimed += n
        if weight:
            self._report_reclaimed(query_id, stage, weight)

    def _report_reclaimed(self, query_id: int, stage: int, weight: int) -> None:
        """Fold reclaimed weight into the stage ledger (tracker-direct)."""
        self.metrics.weight_reclaim_reports += 1
        self.progress.report_reclaimed(query_id, stage, weight % GROUP_MODULUS)

    def _note_reclaimed(
        self, query_id: int, stage: int, weight: int, count: int
    ) -> None:
        """Worker drop-path hook: a run popped ``count`` traversers of a
        cancelling query (they raced ahead of the CANCEL message) and
        discarded them instead of executing."""
        self.metrics.traversers_reclaimed += count
        session = self._cancelling.get(query_id)
        if session is not None:
            session.qmetrics.traversers_reclaimed += count
        weight %= GROUP_MODULUS
        if weight:
            self._report_reclaimed(query_id, stage, weight)

    def _finalize_cancel(self, session: QuerySession) -> None:
        """The cancelled stage's ledger closed: finish the teardown.

        By this point every partition has processed its CANCEL, all
        reclaimed and still-executing weight has reached the ledger, and
        nothing of the query remains queued or in flight. The remaining
        cleanup (memo stores, stage counts, inflight entry, progress
        state) is idempotent.
        """
        query_id = session.query_id
        if self._cancelling.pop(query_id, None) is None:
            return
        self._teardown_query(session)
        self._retire(session)

    def _teardown_query(self, session: QuerySession) -> None:
        """Hard per-partition cleanup of a cancelled/aborted query."""
        query_id = session.query_id
        for runtime in self.runtimes:
            runtime.memo_store.clear_query(query_id)
            _w, n = self._purge_partition(runtime, query_id)
            if n:
                self.metrics.traversers_reclaimed += n
                session.qmetrics.traversers_reclaimed += n
        for worker in self.workers:
            _w, n = worker.reclaim_query(query_id)
            if n:
                self.metrics.traversers_reclaimed += n
                session.qmetrics.traversers_reclaimed += n
        self._inflight.pop(query_id, None)
        self.progress.close_query(query_id)

    # -- resource budgets ---------------------------------------------------

    def _check_budgets_of(self, query_ids: set) -> None:
        """Budget sweep over the queries a worker run just touched."""
        for query_id in query_ids:
            session = self.sessions.get(query_id)
            if session is not None and session.query_id == query_id:
                self._check_budgets(session)

    def _check_budgets(self, session: QuerySession) -> None:
        cfg = self.config
        limit = cfg.max_traversers_per_query
        if limit is not None and session.qmetrics.traversers_spawned > limit:
            self._trip_budget(
                session,
                "traversers",
                f"spawned {session.qmetrics.traversers_spawned} traversers "
                f"(budget {limit})",
            )
            return
        limit = cfg.max_memo_bytes_per_query
        if limit is None:
            return
        # O(records) walk — sample every MEMO_CHECK_INTERVAL-th run.
        session._memo_check_tick = (session._memo_check_tick + 1) % MEMO_CHECK_INTERVAL
        if session._memo_check_tick != 0:
            return
        total = sum(
            runtime.memo_store.bytes_of(session.query_id)
            for runtime in self.runtimes
        )
        if total > session.qmetrics.peak_memo_bytes:
            session.qmetrics.peak_memo_bytes = total
        if total > limit:
            self._trip_budget(
                session, "memo_bytes", f"memos hold ~{total} bytes (budget {limit})"
            )

    def _trip_budget(self, session: QuerySession, budget: str, detail: str) -> None:
        session.budget_exceeded = True
        session.budget_error = (budget, detail)
        self.metrics.budget_cancels += 1
        self._begin_cancel(session, f"budget:{budget}")

    def _do_submit(self, session: QuerySession) -> None:
        now = self.clock.now
        session.qmetrics.submitted_at_us = now
        ready_at = now
        if self.config.per_query_instantiation:
            # Dataflow-style engines (Banyan, GAIA) instantiate every
            # operator in every worker thread before the query can start:
            # each worker pays a parallel setup cost, and the coordinator
            # serially registers the (ops × workers) channel endpoints —
            # the linear-in-threads overhead behind Fig 9's flattening.
            setup = self.cost.operator_instantiation_us * len(session.plan.ops)
            for worker in self.workers:
                worker.add_setup_cost(now, setup)
            coord_setup = (
                self.cost.operator_instantiation_us
                * 0.25
                * len(self.workers)
                * len(session.plan.ops)
            )
            ready_at = self.tracker.charge(now, coord_setup)
        self.progress.open_stage(session.query_id, 0)
        seeds = self._stage0_seeds(session)
        if ready_at > now:
            self.clock.schedule_at(
                ready_at, lambda: self._dispatch_seeds(session, seeds, self.clock.now)
            )
        else:
            self._dispatch_seeds(session, seeds, now)
        self._arm_watchdog(session)

    def _stage0_seeds(self, session: QuerySession) -> List[Traverser]:
        plan = session.plan
        specs: List[Traverser] = []
        for source in plan.source_ops():
            if source.broadcast:
                for pid in range(self.num_partitions):
                    specs.append(
                        make_root(
                            session.query_id, -pid - 1, source.idx, plan.payload_width, 0
                        )
                    )
            else:
                assert isinstance(source, FixedVertexSource)
                vertex = source.start_vertex(session.params)
                specs.append(
                    make_root(
                        session.query_id, vertex, source.idx, plan.payload_width, 0
                    )
                )
        weights = split_weight(ROOT_WEIGHT, len(specs), session.rng)
        return [t.evolve(weight=w) for t, w in zip(specs, weights)]

    def _dispatch_seeds(
        self, session: QuerySession, seeds: List[Traverser], now: float
    ) -> None:
        """Route seed traversers from the coordinator to their partitions."""
        if self.config.progress_mode is ProgressMode.NAIVE_CENTRAL and seeds:
            # The coordinator knows the seed count; no message needed.
            self.progress.add_naive_active(
                session.query_id, seeds[0].stage, len(seeds)
            )
        by_pid: Dict[int, List[Traverser]] = {}
        for trav in seeds:
            pid = self.resolve_target(trav, session.machine.route(trav))
            by_pid.setdefault(pid, []).append(trav)
        for pid, travs in by_pid.items():
            size = sum(t.estimated_size_bytes() for t in travs)
            if self.track_inflight:
                self.note_outbound(session.query_id)
            self.network.send(
                self.tracker_node,
                self.node_of(pid),
                [Message(MsgKind.SEED, pid, travs, size, session.query_id)],
                now,
            )

    # -- message delivery ------------------------------------------------------------

    def _deliver(self, msg: Message) -> None:
        if msg.dst_pid == TRACKER_DST:
            self.tracker.submit(msg, self.clock.now, self.cost.tracker_msg_us)
            return
        runtime = self.runtimes[msg.dst_pid]
        if msg.kind is MsgKind.TRAVERSER:
            if self.track_inflight and msg.query_id in self._inflight:
                self._inflight[msg.query_id] -= len(msg.payload)
            travs = msg.payload
            if self._cancelling:
                # Batches can mix queries (tier-1 buffers pack per node),
                # so arrivals of cancelling queries are filtered out here
                # one traverser at a time, weight reclaimed.
                travs = self._filter_cancelled(travs, msg.dst_pid)
                if not travs:
                    return
            if self._gates is not None:
                runtime.enqueue_remote(travs, self.clock.now)
            else:
                runtime.enqueue(travs, self.clock.now)
        elif msg.kind is MsgKind.SEED:
            if self.track_inflight and msg.query_id in self._inflight:
                self._inflight[msg.query_id] -= 1
            travs = list(msg.payload)
            if self._cancelling:
                travs = self._filter_cancelled(travs, msg.dst_pid, gated=False)
                if not travs:
                    return
            # Seeds bypass the credit gate: the coordinator must always be
            # able to start/advance admitted queries, and seed cardinality
            # is bounded by the partition count.
            runtime.enqueue(travs, self.clock.now)
        elif msg.kind is MsgKind.CONTROL:
            tag, query_id, stage = msg.payload
            if tag != "cancel":  # pragma: no cover - single control verb
                raise ExecutionError(f"unexpected control message {tag!r}")
            self._cancel_at_partition(query_id, stage, msg.dst_pid)
        else:  # pragma: no cover - no other worker-bound kinds exist
            raise ExecutionError(f"unexpected worker message kind {msg.kind}")

    def _filter_cancelled(
        self, travs: List[Traverser], pid: int, gated: Optional[bool] = None
    ) -> List[Traverser]:
        """Drop arriving traversers of mid-cancellation queries.

        They were in flight when the CANCEL fanned out (racing ahead of or
        behind it); their progression weight is reclaimed here and — on the
        credit-gated path — their sender credits released immediately,
        since they will never occupy the inbox.
        """
        cancelling = self._cancelling
        kept = [t for t in travs if t.query_id not in cancelling]
        n_dropped = len(travs) - len(kept)
        if not n_dropped:
            return kept
        dropped: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for t in travs:
            if t.query_id in cancelling:
                key = (t.query_id, t.stage)
                w, c = dropped.get(key, (0, 0))
                dropped[key] = ((w + t.weight) % GROUP_MODULUS, c + 1)
        if (self._gates is not None) if gated is None else gated:
            self._gates[pid].release(n_dropped)
        for (query_id, stage), (weight, count) in dropped.items():
            self._note_reclaimed(query_id, stage, weight, count)
        return kept

    def tracker_handle(self, msg: Message) -> None:
        """Process one tracker-bound message (progress report or partial)."""
        if msg.kind is MsgKind.PROGRESS:
            tag, query_id, stage, value = msg.payload
            if tag == "weight":
                self.progress.report_weight(query_id, stage, value)
            else:
                self.progress.report_delta(query_id, stage, value)
        elif msg.kind is MsgKind.PARTIAL:
            _tag, query_id, stage, partial = msg.payload
            session = self.sessions.get(query_id)
            if session is None or session.cursor.current != stage:
                return
            session.partials.append(partial)
            if len(session.partials) >= session.expected_partials:
                done_at = self.tracker.charge(
                    self.clock.now,
                    self.cost.combine_partial_us * len(session.partials),
                )
                self.clock.schedule_at(
                    done_at, lambda s=session, st=stage: self._complete_stage(s, st)
                )
        else:  # pragma: no cover
            raise ExecutionError(f"unexpected tracker message kind {msg.kind}")

    # -- stage lifecycle ------------------------------------------------------------------

    def _stage_terminated(self, query_id: int, stage: int) -> None:
        """Weight ledger hit 1: gather the barrier's partials (Fig 6)."""
        cancelling = self._cancelling.get(query_id)
        if cancelling is not None:
            # A cancelled stage's ledger closed: all outstanding weight was
            # executed or reclaimed, so nothing of the query remains queued,
            # buffered, or in flight — finish the teardown.
            self._finalize_cancel(cancelling)
            return
        session = self.sessions.get(query_id)
        if session is None or session.cursor.current != stage:
            return
        if (
            self.config.progress_mode is ProgressMode.NAIVE_CENTRAL
            and not self._query_quiescent(query_id, stage)
        ):
            # Transient zero crossing: traversers are still in transit.
            # Their own reports will re-trigger the zero check later.
            return
        barrier = session.cursor.barrier()
        now = self.clock.now
        expected = 0
        for pid, runtime in enumerate(self.runtimes):
            memo = runtime.memo_store.peek(query_id)
            if memo is None:
                continue
            value = barrier.partial(memo)
            if value is None:
                continue
            expected += 1
            size = barrier.estimated_partial_size(value)
            self.network.send(
                self.node_of(pid),
                self.tracker_node,
                [
                    Message(
                        MsgKind.PARTIAL,
                        TRACKER_DST,
                        ("partial", query_id, stage,
                         GatheredPartial(pid, value, size)),
                        size,
                        query_id,
                    )
                ],
                now,
            )
        session.expected_partials = expected
        session.partials = []
        if expected == 0:
            self._complete_stage(session, stage)

    def _complete_stage(self, session: QuerySession, stage: int) -> None:
        if self.sessions.get(session.query_id) is not session:
            return  # cancelled/aborted while the combine event was queued
        if session.cursor.current != stage or session.cursor.finished:
            return
        # The stage's ledger has served its purpose; drop it so late
        # (retransmitted / stale) weight reports resolve to "unknown stage"
        # instead of accumulating terminated ledgers for the query's life.
        self.progress.close_stage(session.query_id, stage)
        seeds = session.cursor.complete_stage(session.partials, session.rng)
        # Vacuously-empty intermediate stages terminate immediately.
        while not seeds and not session.cursor.finished:
            seeds = session.cursor.complete_stage([], session.rng)
        if session.cursor.finished:
            self._finish_query(session)
            return
        self.progress.open_stage(session.query_id, session.cursor.current)
        self._dispatch_seeds(session, seeds, self.clock.now)

    def _finish_query(self, session: QuerySession) -> None:
        session.qmetrics.completed_at_us = self.clock.now
        session.qmetrics.result_rows = len(session.results)
        for runtime in self.runtimes:
            runtime.memo_store.clear_query(session.query_id)
            runtime.drop_query(session.query_id)
        self._inflight.pop(session.query_id, None)
        self.progress.close_query(session.query_id)
        self.sessions.pop(session.query_id, None)
        self._retire(session)

    # -- convenience runners ------------------------------------------------------------------

    def run(
        self,
        plan: PhysicalPlan,
        params: Optional[Dict[str, Any]] = None,
        max_events: Optional[int] = None,
        time_limit_us: Optional[float] = None,
    ) -> QueryResult:
        """Submit one query and simulate to completion.

        Raises :class:`~repro.errors.QueryTimeoutError` when
        ``time_limit_us`` is set and the query overruns it.
        """
        session = self.submit(plan, params, time_limit_us=time_limit_us)
        self.clock.run_until_idle(max_events)
        return self.result_of(session, time_limit_us=time_limit_us)

    def result_of(
        self,
        session: QuerySession,
        time_limit_us: Optional[float] = None,
    ) -> QueryResult:
        """Resolve a drained session into a result, or raise its outcome.

        Outcome precedence mirrors the submission lifecycle: shed before
        dispatch (``QueryRejectedError``), expired waiting
        (``AdmissionTimeoutError``), deadline abort (``QueryTimeoutError``),
        budget trip (partial :class:`QueryResult` when salvaged, else
        ``ResourceBudgetExceededError``), caller cancel
        (``QueryCancelledError``), retry exhaustion
        (``RetryBudgetExceededError``).
        """
        if session.rejected:
            raise QueryRejectedError(
                session.query_id, self.config.admission_queue_size
            )
        if session.admission_timed_out:
            raise AdmissionTimeoutError(
                session.query_id, self.config.admission_timeout_us or 0.0
            )
        if session.timed_out:
            limit = (
                time_limit_us
                if time_limit_us is not None
                else (session.time_limit_us or 0)
            )
            raise QueryTimeoutError(session.query_id, limit / 1e3)
        if session.budget_exceeded:
            if session.partial_result:
                return QueryResult(
                    session.results,
                    session.qmetrics.latency_us,
                    session.qmetrics,
                    partial=True,
                )
            budget, detail = session.budget_error or ("resource", "exceeded")
            raise ResourceBudgetExceededError(session.query_id, budget, detail)
        if session.cancelled:
            raise QueryCancelledError(
                session.query_id, session.cancel_reason or "cancelled"
            )
        if session.failed:
            raise RetryBudgetExceededError(
                session.qmetrics.query_id, session.qmetrics.retries
            )
        if not session.qmetrics.done:
            raise ExecutionError(
                f"query {session.query_id} did not complete (plan "
                f"{session.plan.name!r}); simulation deadlock?"
            )
        return QueryResult(
            session.results, session.qmetrics.latency_us, session.qmetrics
        )

    def profile(
        self,
        plan: PhysicalPlan,
        params: Optional[Dict[str, Any]] = None,
        max_events: Optional[int] = None,
    ) -> "QueryProfile":
        """EXPLAIN ANALYZE: run a query and return per-operator counts.

        Shows, for every physical operator, how many traversers executed it
        and how many children it spawned — where a query's traverser volume
        actually comes from (e.g. which Expand explodes, how many arrivals
        a Dedup prunes).
        """
        session = self.submit(plan, params)
        self.clock.run_until_idle(max_events)
        if not session.qmetrics.done:
            raise ExecutionError(f"profiled query {session.query_id} incomplete")
        return QueryProfile(
            plan,
            dict(session.op_steps),
            dict(session.op_spawned),
            session.qmetrics,
            session.results,
        )

    def run_closed_loop(
        self,
        make_query: Callable[[int], Tuple[PhysicalPlan, Dict[str, Any]]],
        clients: int,
        total_queries: int,
        max_events: Optional[int] = None,
    ) -> Tuple[float, LatencyRecorder]:
        """Closed-loop throughput: ``clients`` concurrent issuers.

        Returns (queries per second of simulated time, latency recorder).
        """
        recorder = LatencyRecorder()
        state = {"issued": 0, "done": 0}

        def issue() -> None:
            if state["issued"] >= total_queries:
                return
            index = state["issued"]
            state["issued"] += 1
            plan, params = make_query(index)
            self.submit(plan, params, on_done=on_done)

        def on_done(session: QuerySession) -> None:
            state["done"] += 1
            recorder.record(session.qmetrics.latency_us)
            issue()

        for _ in range(min(clients, total_queries)):
            issue()
        start = self.clock.now
        self.clock.run_until_idle(max_events)
        elapsed_us = self.clock.now - start
        if state["done"] != total_queries:
            raise ExecutionError(
                f"closed loop finished {state['done']}/{total_queries} queries"
            )
        qps = total_queries / (elapsed_us / 1e6) if elapsed_us > 0 else float("inf")
        return qps, recorder
