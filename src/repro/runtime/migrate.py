"""Live vertex migration: the adaptive half of the placement plane.

The paper fixes vertex placement to the static hash ``H`` (§II-C), which
makes cross-partition traverser messages — the dominant cost of the
skewed LDBC-shaped workloads (Fig 11, docs/PERFORMANCE.md) — a property
of the dataset, not the workload. This module closes that gap in the
Loom/TAPER direction: observe where traversers actually flow, then move
hot vertices toward their dominant source partitions *without stopping
traffic*, using the placement plane's relocation table
(:class:`repro.graph.placement.Placement`) as the atomic switch.

Two cooperating pieces:

* :class:`TrafficMiner` — a tier-1 flush hook (``Worker.miner``) that
  folds live per-partition-pair traverser counts into a per-vertex gain
  model: a vertex whose inbound traverser traffic is dominated by one
  remote partition is a candidate to move there. Mining is pure
  observation; it never touches placement.
* :class:`Migrator` — applies a batch of moves at one simulated instant.
  The discrete-event clock makes the flip atomic for free (no other
  event interleaves), so the protocol is sequencing, not locking:

  1. **defer** while any active query is mid-broadcast-scan at stage 0
     (a scan that already ran on the old owner plus one that will run on
     the new owner would visit a moved vertex twice);
  2. **flip + reshard** — :meth:`PartitionedGraph.move_vertices` updates
     the relocation table (written through the hot-path pid cache) and
     rebuilds the affected CSR stores in place;
  3. **ship state** — resident memo records whose integer keys follow
     vertex placement (dedup members, Distance records, int join keys)
     move to the new owner's store, and stored stage-boundary
     checkpoints are resharded the same way
     (:meth:`CheckpointPlane.reshard`) so a later crash restore cannot
     resurrect a record on a partition that no longer owns its key;
  4. **sweep** — traversers already queued or inboxed at the old owners
     are re-routed through :func:`retarget_pid` and forwarded
     (:func:`forward_batch`). Their progression weight never leaves the
     ledger's "active" column — forwarding is an extra hop, not a
     reclaim — so Theorem 1 holds across the flip, which the
     :class:`~repro.runtime.trace.WeightLedgerAuditor` re-asserts at
     every MIGRATE event;
  5. **arm forwarding** — tier-1 buffers and in-flight messages still
     carry pids computed under the old placement; once
     ``DeliveryPlane.forwarding`` is armed, every later arrival is
     re-checked and strays take one extra hop to their new home. The
     flag stays off (and the check costs nothing) on unmigrated runs.

  The modeled shipping cost (CSR rows + memo bytes) rides CONTROL
  messages through the normal NIC path, so migration competes for wire
  time with the queries it is trying to speed up.

Like :mod:`repro.runtime.preempt`, this layer sits below the engine and
is handed the engine object by its callers; it may not import it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.machine import resolve_partition
from repro.core.memo import BYTES_PER_LIST_ELEMENT, BYTES_PER_RECORD
from repro.core.progress import ProgressMode
from repro.errors import ExecutionError
from repro.runtime.metrics import MsgKind
from repro.runtime.network import Message
from repro.runtime.trace import MIGRATE
from repro.runtime.txnplane import VERSION_BYTES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traverser import Traverser
    from repro.runtime.engine import AsyncPSTMEngine
    from repro.runtime.worker import PartitionRuntime

__all__ = [
    "MIGRATE_MSG_BYTES",
    "Migrator",
    "TrafficMiner",
    "forward_batch",
    "retarget_pid",
]

#: minimum wire size of one MIGRATE control message (tag + count + header)
MIGRATE_MSG_BYTES = 24


def retarget_pid(engine: "AsyncPSTMEngine", trav: "Traverser", cur_pid: int) -> int:
    """The partition ``trav`` should execute on under the *current* placement.

    ``cur_pid`` is where the traverser sits (or just arrived); it is kept
    there whenever its routing does not depend on vertex placement:
    partition-addressed broadcast seeds (``vertex = -pid - 1``), barrier
    ("fixed") routes, custom routes over non-integer keys (stable-hashed,
    placement-independent), and traversers of unknown/retired sessions —
    those are dead strays the drain loop already reclaims in place.
    """
    session = engine.sessions.get(trav.query_id)
    if session is None:
        return cur_pid
    placement = engine.graph.partitioner
    _stage, mode, op = session.machine.route_info()[trav.op_idx]
    if mode == "vertex":
        return placement(trav.vertex)
    if mode == "free":
        return placement(trav.vertex) if trav.vertex >= 0 else cur_pid
    if mode == "fixed":
        return cur_pid
    return resolve_partition(trav, placement, op.routing(placement, trav))


def forward_batch(
    engine: "AsyncPSTMEngine",
    src_node: int,
    groups: Dict[int, List["Traverser"]],
    when: float,
) -> int:
    """Send re-routed traversers from ``src_node`` to their new owners.

    The forwarding counterpart of the tier-1 flush path: one TRAVERSER
    batch per target partition on the ungated path, capacity-capped
    chunks through the target's credit gate when backpressure is armed
    (a gate-deferred forward parks like any other throttled send — the
    traversers stay in flight, never dropped). Returns the number of
    traversers forwarded.
    """
    delivery = engine.delivery
    gates = delivery.gates
    network = engine.network
    n = 0
    for pid in sorted(groups):
        travs = groups[pid]
        n += len(travs)
        dst_node = engine.node_of(pid)
        if delivery.track_inflight:
            for t in travs:
                delivery.note_outbound(t.query_id)
        if gates is None:
            size = sum(t.estimated_size_bytes() for t in travs)
            network.send(
                src_node,
                dst_node,
                [Message(MsgKind.TRAVERSER, pid, travs, size, travs[0].query_id)],
                when,
            )
        else:
            cap = gates[pid].capacity
            for i in range(0, len(travs), cap):
                chunk = travs[i:i + cap]
                size = sum(t.estimated_size_bytes() for t in chunk)
                msg = Message(
                    MsgKind.TRAVERSER, pid, chunk, size, chunk[0].query_id
                )
                send = (
                    lambda at, m=msg, dn=dst_node:
                    network.send(src_node, dn, [m], at)
                )
                gates[pid].submit(len(chunk), send, when)
    return n


class TrafficMiner:
    """Folds live traverser flow into a hot-vertex migration gain model.

    Attached to every worker (:meth:`attach` sets ``Worker.miner``), it
    sees each tier-1 flush's ``(pid, traverser, size)`` pairs and counts,
    per target vertex, how many traversers each *source* partition sent
    toward it — exactly the messages a migration could make local. Only
    vertex-placement-routed traversers count: fixed/barrier routes and
    stable-hashed custom keys would not move with the vertex.

    :meth:`mine` then proposes the Loom-style greedy batch: the
    per-vertex counts fold into per-partition-pair traffic to pick one
    consolidation target per round (the hottest cross-traffic source),
    and vertices pulled hardest toward it move, ranked by gain (pull
    minus home-source count), guarded by a dominance ratio, and capped
    by a partition balance bound. All tie-breaks are deterministic
    (lowest pid, lowest vertex id) so mining is reproducible run to run.
    """

    def __init__(self, engine: "AsyncPSTMEngine") -> None:
        self.engine = engine
        #: vertex -> {source pid -> traversers sent toward it}
        self.counts: Dict[int, Dict[int, int]] = {}
        # route tables by query id: one dict probe per traverser instead
        # of a session attribute walk on the flush path
        self._route_cache: Dict[int, List] = {}

    def attach(self) -> None:
        """Install this miner on every worker's flush hook."""
        for worker in self.engine.workers:
            worker.miner = self

    def detach(self) -> None:
        """Remove this miner from the workers (observation pause)."""
        for worker in self.engine.workers:
            if worker.miner is self:
                worker.miner = None

    def reset(self) -> None:
        """Drop all observed counts (start a fresh observation window)."""
        self.counts.clear()
        self._route_cache.clear()

    def note_pairs(
        self, src_pid: int, pairs: List[Tuple[int, "Traverser", int]]
    ) -> None:
        """Tier-1 flush hook: count placement-routed remote traversers."""
        sessions = self.engine.sessions
        cache = self._route_cache
        counts = self.counts
        for pid, trav, _size in pairs:
            if pid == src_pid:
                continue
            qid = trav.query_id
            info = cache.get(qid)
            if info is None:
                session = sessions.get(qid)
                if session is None:
                    continue
                info = cache[qid] = session.machine.route_info()
            mode = info[trav.op_idx][1]
            if mode == "vertex" or (mode == "free" and trav.vertex >= 0):
                per = counts.get(trav.vertex)
                if per is None:
                    counts[trav.vertex] = {src_pid: 1}
                else:
                    per[src_pid] = per.get(src_pid, 0) + 1

    def mine(
        self,
        top_k: int = 32,
        min_gain: int = 2,
        balance_slack: float = 0.10,
        dominance: float = 1.0,
    ) -> Dict[int, int]:
        """Propose a move batch ``{vertex: target pid}`` from the counts.

        ``min_gain`` discards cold vertices (moving them churns stores
        for noise), ``top_k`` bounds the batch, and ``balance_slack``
        caps any partition at ``(1 + slack) × mean`` vertices so the
        miner cannot trade message locality for a load hotspot — the
        same two-objective shape as Loom's fennel-style heuristic.

        Each round consolidates toward **one** target: the partition
        sourcing the most cross-partition traffic, read off the folded
        per-partition-pair counters. Per-vertex argmax targets looked
        plausible but scatter in practice — a vertex two hops out from a
        hot root draws near-uniform inbound from all partitions before
        its parents consolidate, so its "dominant source" is sampling
        noise and moving there just reshuffles which three quarters of
        its traffic are remote. Pooling the evidence across vertices
        picks a real gravity well; the two-hop shell becomes genuinely
        dominated one round later, after the one-hop ring lands, and is
        worth the wait. ``dominance`` additionally demands the target's
        pull on a vertex beat the best competing partition by a ratio.
        """
        graph = self.engine.graph
        placement = graph.partitioner
        # Fold the per-vertex counts into per-partition-pair traffic and
        # pick this round's consolidation target.
        pair_out: Dict[int, int] = {}
        for vid, per in self.counts.items():
            home = placement(vid)
            for pid, cnt in per.items():
                if pid != home:
                    pair_out[pid] = pair_out.get(pid, 0) + cnt
        if not pair_out:
            return {}
        target = max(pair_out.items(), key=lambda kv: (kv[1], -kv[0]))[0]
        candidates: List[Tuple[int, int, int]] = []
        for vid, per in self.counts.items():
            home = placement(vid)
            if home == target:
                continue
            pull = per.get(target, 0)
            runner_up = max(
                (cnt for pid, cnt in per.items() if pid != target), default=0
            )
            if pull < dominance * max(runner_up, 1):
                continue
            gain = pull - per.get(home, 0)
            if gain >= min_gain:
                candidates.append((gain, vid, target))
        candidates.sort(key=lambda c: (-c[0], c[1]))
        sizes = graph.partition_sizes()
        cap = int(sum(sizes) / len(sizes) * (1.0 + balance_slack)) + 1
        moves: Dict[int, int] = {}
        for _gain, vid, pid in candidates:
            if len(moves) >= top_k:
                break
            if sizes[pid] + 1 > cap:
                continue
            sizes[pid] += 1
            sizes[placement(vid)] -= 1
            moves[vid] = pid
        return moves


class Migrator:
    """Applies mined move batches to a live engine without stopping it."""

    def __init__(self, engine: "AsyncPSTMEngine", defer_us: float = 50.0) -> None:
        if engine.config.progress_mode is ProgressMode.NAIVE_CENTRAL:
            raise ExecutionError(
                "live migration requires a weighted progress mode: the naive "
                "tracker counts traversers by location and a placement flip "
                "would desynchronize its active counts"
            )
        self.engine = engine
        #: retry delay while a stage-0 broadcast scan blocks the flip
        self.defer_us = defer_us
        self.completed = 0
        self.deferred = 0

    def scan_hazard(self) -> bool:
        """True while a placement flip could double-visit a scan.

        A broadcast source scans each partition's *local vertex list*;
        the per-partition scans of one query execute as separate events,
        so a flip between them would let a moved vertex appear in an
        already-scanned list and again in a not-yet-scanned one. Any
        active session still in stage 0 of a broadcast-sourced plan is a
        hazard; fixed-vertex sources and later stages are flip-safe.
        """
        for session in self.engine.sessions.values():
            if session.cursor.current != 0:
                continue
            if any(op.broadcast for op in session.plan.source_ops()):
                return True
        return False

    def migrate(
        self,
        moves: Dict[int, int],
        on_done: Optional[callable] = None,
    ) -> Optional[Dict[str, int]]:
        """Relocate ``moves`` at the current instant (or defer past scans).

        Returns the migration report, or ``None`` when the flip was
        deferred — it reschedules itself every ``defer_us`` until the
        scan hazard clears and then runs ``on_done(report)``.
        """
        if not moves:
            report = {"vertices": 0, "bytes": 0, "swept": 0,
                      "memo_records": 0, "pairs": 0}
            if on_done is not None:
                on_done(report)
            return report
        engine = self.engine
        if self.scan_hazard():
            self.deferred += 1
            engine.clock.schedule_at(
                engine.clock.now + self.defer_us,
                lambda: self.migrate(moves, on_done),
            )
            return None
        report = self._apply(moves)
        if on_done is not None:
            on_done(report)
        return report

    # -- the flip (one simulated event, hence atomic) ----------------------

    def _apply(self, moves: Dict[int, int]) -> Dict[str, int]:
        engine = self.engine
        graph = engine.graph
        placement = graph.partitioner
        old = {vid: placement(vid) for vid in moves}
        applied, ship_bytes = graph.move_vertices(moves)
        if not applied:
            return {"vertices": 0, "bytes": 0, "swept": 0,
                    "memo_records": 0, "pairs": 0}

        memo_records, memo_bytes = self._move_memos(applied)
        ship_bytes += memo_bytes
        if engine.checkpoints is not None:
            ship_bytes += BYTES_PER_RECORD * engine.checkpoints.reshard(applied)
        plane = getattr(engine, "txnplane", None)
        if plane is not None:
            # Delta rows follow their vertex (docs/TRANSACTIONS.md):
            # committed TEL logs and property chains ship to the new owner
            # alongside the base CSR rows, or snapshot reads routed there
            # would silently miss them.
            ship_bytes += VERSION_BYTES * plane.reshard(applied)

        swept = 0
        for pid in sorted({old[vid] for vid in applied}):
            swept += self._sweep_runtime(engine.runtimes[pid])
        engine.delivery.forwarding = True

        pairs = sorted({(old[vid], pid) for vid, pid in applied.items()})
        now = engine.clock.now
        share, rem = divmod(ship_bytes, len(pairs))
        for i, (src, dst) in enumerate(pairs):
            size = max(share + (rem if i == 0 else 0), MIGRATE_MSG_BYTES)
            engine.network.send(
                engine.node_of(src),
                engine.node_of(dst),
                [Message(MsgKind.CONTROL, dst, ("migrate", -1, len(applied)),
                         size, -1)],
                now,
            )

        self.completed += 1
        engine.metrics.migrations += 1
        engine.metrics.vertices_migrated += len(applied)
        engine.metrics.migration_bytes += ship_bytes
        if engine.trace is not None:
            engine.trace.emit(
                MIGRATE, -1, vertices=len(applied), pairs=len(pairs),
                bytes=ship_bytes, swept=swept, memo_records=memo_records,
                version=placement.version,
            )
        return {"vertices": len(applied), "bytes": ship_bytes, "swept": swept,
                "memo_records": memo_records, "pairs": len(pairs)}

    def _move_memos(self, applied: Dict[int, int]) -> Tuple[int, int]:
        """Ship resident memo records whose integer keys moved.

        Integer memo keys follow vertex placement by convention
        (``Placement.key_partition``): dedup members, Distance records,
        and integer join keys all live at ``placement(key)``, and later
        probes route there — leaving a record behind would e.g. let a
        deduplicated vertex pass twice. Aggregation partials are keyed by
        the string ``"partial"`` and stable-hashed keys never move, so
        filtering on integer keys is exact. Returns (records, bytes).
        """
        runtimes = self.engine.runtimes
        records = 0
        shipped = 0
        for runtime in runtimes:
            store = runtime.memo_store
            pid = runtime.pid
            for qid in store.active_queries():
                memo = store.peek(qid)
                for label in memo.labels():
                    tbl = memo.table(label)
                    hit = [k for k in tbl
                           if type(k) is int and applied.get(k, pid) != pid]
                    for key in hit:
                        value = tbl.pop(key)
                        dest = runtimes[applied[key]].memo_store.for_query(qid)
                        dest.table(label)[key] = value
                        records += 1
                        shipped += BYTES_PER_RECORD
                        if type(value) is list:
                            shipped += BYTES_PER_LIST_ELEMENT * len(value)
        return records, shipped

    def _sweep_runtime(self, runtime: "PartitionRuntime") -> int:
        """Re-route an old owner's queued + inboxed stale traversers.

        The migration counterpart of ``reclaim_query``'s rebuild sweep,
        but weight-preserving: strays leave this partition's queue (and
        release their inbox credits — they will re-acquire at the new
        home through the forward's gate submit) and go back on the wire
        toward their re-resolved owner. Stage counts move with them; the
        ledger never hears about it, because nothing was reclaimed.
        """
        engine = self.engine
        delivery = engine.delivery
        pid = runtime.pid
        strays: Dict[int, List["Traverser"]] = {}
        moved_counts: Dict[Tuple[int, int], int] = {}
        for source, inboxed in ((runtime.queue, False), (runtime.inbox, True)):
            if not source:
                continue
            kept = []
            n_strayed = 0
            for trav in source:
                target = retarget_pid(engine, trav, pid)
                if target == pid:
                    kept.append(trav)
                else:
                    strays.setdefault(target, []).append(trav)
                    key = (trav.query_id, trav.stage)
                    moved_counts[key] = moved_counts.get(key, 0) + 1
                    n_strayed += 1
            if n_strayed:
                source.clear()
                source.extend(kept)
                if inboxed and delivery.gates is not None:
                    delivery.gates[pid].release(n_strayed)
        if not strays:
            return 0
        for key, cnt in moved_counts.items():
            runtime.dec_stage_count(key, cnt)
        n = forward_batch(engine, engine.node_of(pid), strays, engine.clock.now)
        engine.metrics.traversers_forwarded += n
        return n
