"""Per-partition query checkpointing at certified stage boundaries.

The checkpoint plane (docs/RECOVERY.md). A :class:`CheckpointPlane` is
attached to the engine only when ``EngineConfig.checkpoint_interval_us``
is set; every hook guards on ``checkpoints is not None``, so the disarmed
mode costs nothing and stays bit-identical to the pre-checkpoint engine.

**What a checkpoint is.** A stage boundary is the one point in a query's
life where a globally consistent cut exists *for free*: the stage's
progression-weight ledger just reached the root weight, which certifies
(paper Theorem 1) that no traverser of the query is queued, buffered,
absorbed in a coalescing accumulator, or in flight anywhere in the
cluster. At that instant the query's complete distributed state is

* the next stage's **seed traversers** (the frontier, held at the
  coordinator — their weights *are* the progression-weight ledger share,
  freshly split to sum to the root weight),
* each partition's **memo shard** for the query (``M_p`` — the stateful
  half of the PSTM model), and
* the session's **RNG state** (weight splits draw from it; replaying a
  stage with a different RNG state would break the ledger bit-for-bit).

:class:`StageCheckpoint` captures exactly those three things. Nothing
else exists to capture: worker accumulators and tier-1 buffers are
provably empty for the query (the ledger could not have closed
otherwise), and per-partition run queues hold no traverser of it.

**Fencing.** The engine takes snapshots only from the stage-completion
path while the session's :class:`~repro.runtime.lifecycle.QueryLifecycle`
is in RUNNING — or PAUSING, for the forced snapshot a voluntary
preemption takes at the boundary it yields at — a CANCELLING or
torn-down query is never snapshotted, so a snapshot can never straddle a
reclaim. Restore (in
:class:`~repro.runtime.faults.RecoveryManager`) re-keys the dead
attempt's checkpoints to the fresh query id, so a second crash can
restore again from the same boundary.

This module is a layering leaf beside ``trace.py``: it may import only
``trace`` from the runtime package (for the event-kind constant), holds
no reference to the engine, and is handed engine/session objects by its
callers (enforced by ``tools/check_layering.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.memo import MemoSnapshot, QueryMemo
from repro.runtime.trace import CHECKPOINT

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.traverser import Traverser
    from repro.runtime.engine import AsyncPSTMEngine
    from repro.runtime.lifecycle import QuerySession

__all__ = ["CheckpointPlane", "StageCheckpoint"]


class StageCheckpoint:
    """One query's complete state at one certified stage boundary."""

    __slots__ = ("query_id", "stage", "ts", "seeds", "rng_state", "memos")

    def __init__(
        self,
        query_id: int,
        stage: int,
        ts: float,
        seeds: Tuple["Traverser", ...],
        rng_state: Any,
        memos: Dict[int, MemoSnapshot],
    ) -> None:
        #: id of the attempt that took the snapshot (re-keyed on restore)
        self.query_id = query_id
        #: the stage the seeds open (resume point)
        self.stage = stage
        #: simulated time the boundary was crossed
        self.ts = ts
        #: next-stage seed traversers; their weights sum to the root weight
        self.seeds = seeds
        #: ``random.Random.getstate()`` as of the post-split boundary
        self.rng_state = rng_state
        #: per-partition memo shards: pid -> label -> {key: value}
        self.memos = memos

    def record_count(self) -> int:
        """Total memo records captured across all partition shards."""
        return sum(
            len(tbl) for shard in self.memos.values() for tbl in shard.values()
        )

    def build_memo(self, pid: int) -> Optional[QueryMemo]:
        """A fresh :class:`QueryMemo` for one partition's shard (``None``
        when the partition held no records at the boundary). Copies, so
        the stored checkpoint survives the restore attempt mutating it."""
        shard = self.memos.get(pid)
        return None if shard is None else QueryMemo.from_snapshot(shard)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StageCheckpoint(q{self.query_id}, stage={self.stage}, "
                f"ts={self.ts:.1f}, seeds={len(self.seeds)}, "
                f"partitions={len(self.memos)})")


class CheckpointPlane:
    """Stores stage-boundary checkpoints per query, bounded by retention.

    ``interval_us`` gates which boundaries actually snapshot: a boundary
    is skipped when the previous snapshot of the same query is younger
    than the interval (``0.0`` snapshots every boundary). Stage 0 never
    snapshots — its "checkpoint" is the submission itself, which the
    force-retry path already replays from scratch.
    """

    def __init__(self, interval_us: float, retention: int) -> None:
        self.interval_us = interval_us
        self.retention = retention
        self._by_query: Dict[int, List[StageCheckpoint]] = {}
        self._last_ts: Dict[int, float] = {}
        #: lifetime counters (mirrored into RunMetrics by the callers)
        self.taken = 0
        self.evicted = 0

    # -- capture -------------------------------------------------------------

    def maybe_snapshot(
        self,
        engine: "AsyncPSTMEngine",
        session: "QuerySession",
        seeds: List["Traverser"],
        force: bool = False,
    ) -> bool:
        """Snapshot one stage boundary if the interval gate allows it.

        Called by the engine from ``_complete_stage`` after the next
        stage's ledger is opened and its seeds are split, *before* they
        are dispatched — the certified quiescent instant. The caller has
        already applied the lifecycle fence (session RUNNING). Returns
        True when a checkpoint was stored.

        ``force=True`` bypasses the interval gate: a voluntary preemption
        (docs/RECOVERY.md) must capture the boundary it yields at, because
        that snapshot *is* the evicted query — skipping it would lose the
        frontier.
        """
        query_id = session.query_id
        now = engine.clock.now
        last = self._last_ts.get(query_id)
        if not force and last is not None and now - last < self.interval_us:
            return False
        memos: Dict[int, MemoSnapshot] = {}
        for pid, runtime in enumerate(engine.runtimes):
            memo = runtime.memo_store.peek(query_id)
            if memo is not None:
                memos[pid] = memo.snapshot()
        ckpt = StageCheckpoint(
            query_id=query_id,
            stage=session.cursor.current,
            ts=now,
            seeds=tuple(seeds),
            rng_state=session.rng.getstate(),
            memos=memos,
        )
        chain = self._by_query.setdefault(query_id, [])
        chain.append(ckpt)
        while len(chain) > self.retention:
            chain.pop(0)
            self.evicted += 1
        self._last_ts[query_id] = now
        self.taken += 1
        engine.metrics.checkpoints_taken += 1
        if engine.trace is not None:
            engine.trace.emit(
                CHECKPOINT, query_id, stage=ckpt.stage, n_seeds=len(seeds),
                partitions=len(memos), records=ckpt.record_count(),
                forced=force,
            )
        return True

    # -- lookup & lifecycle --------------------------------------------------

    def latest(self, query_id: int) -> Optional[StageCheckpoint]:
        """The newest stored checkpoint for a query (restore source)."""
        chain = self._by_query.get(query_id)
        return chain[-1] if chain else None

    def count(self, query_id: int) -> int:
        """Stored checkpoints for a query (retention observability)."""
        return len(self._by_query.get(query_id, ()))

    def rekey(self, old_query_id: int, new_query_id: int) -> None:
        """Move a query's checkpoints to its restored attempt's id.

        Restore runs under a fresh query id (the same fencing idiom as
        force-retry); re-keying keeps the chain reachable so a second
        crash can restore from the same boundary again.
        """
        chain = self._by_query.pop(old_query_id, None)
        if chain is not None:
            for ckpt in chain:
                ckpt.query_id = new_query_id
            self._by_query[new_query_id] = chain
        last = self._last_ts.pop(old_query_id, None)
        if last is not None:
            self._last_ts[new_query_id] = last

    def reshard(self, moved: Dict[int, int]) -> int:
        """Re-home stored memo shards after a placement flip.

        A stored checkpoint's ``memos`` dict is keyed by the partition
        that owned each shard *when the snapshot was taken*. Restore
        installs each shard back into its keyed partition, so after a
        live migration the integer memo keys that follow vertex placement
        (dedup members, vertex group keys, Distance records) would land
        on a partition that no longer owns them — later probes, routed by
        the *new* placement, would miss them and e.g. re-admit a
        deduplicated vertex. Moving the records between shards at flip
        time keeps every stored boundary restorable. Non-integer keys
        route by the stable key hash, which placement flips never change,
        so they stay put. Returns the number of records moved.
        """
        migrated = 0
        for chain in self._by_query.values():
            for ckpt in chain:
                for old_pid, shard in list(ckpt.memos.items()):
                    for label, tbl in shard.items():
                        hit = [k for k in tbl
                               if type(k) is int and moved.get(k, old_pid) != old_pid]
                        for key in hit:
                            new_pid = moved[key]
                            dest = ckpt.memos.setdefault(new_pid, {})
                            dest.setdefault(label, {})[key] = tbl.pop(key)
                            migrated += 1
        return migrated

    def drop(self, query_id: int) -> None:
        """Discard a retired query's checkpoints (single engine exit)."""
        self._by_query.pop(query_id, None)
        self._last_ts.pop(query_id, None)

    @property
    def stored(self) -> int:
        """Checkpoints currently held (must drain to 0 at quiescence)."""
        return sum(len(chain) for chain in self._by_query.values())
