"""The vector execution kernel: NumPy array programs for hot run shapes.

:class:`VectorKernel` is the third kernel tier (docs/PERFORMANCE.md). It
drains the same homogeneous runs as :class:`~repro.runtime.kernels.BatchKernel`
— via the shared :class:`~repro.runtime.runs.RunDrain` machinery — but
substitutes bulk NumPy computation for the per-element inner loops on run
shapes it can prove bit-for-bit equivalent to the scalar reference:

* **Expand runs** (:func:`_expand_run`) — the dominant shape. Neighbor
  ranges are gathered from the zero-copy CSR views
  (:meth:`~repro.graph.csr.CSRIndex.np_arrays`) with ``np.repeat`` +
  ``np.arange`` arithmetic, step costs are priced as one float64 array
  expression, partition owners come from the placement plane's bulk
  lookup (:meth:`~repro.graph.placement.Placement.bulk_lookup` — the
  vectorized SplitMix64, or a dense table once vertices have been
  relocated), and the run's weight splits are drawn as **one** ``getrandbits(64·m)``
  call decomposed little-endian — exactly the words the scalar path's
  ``m`` sequential ``getrandbits(64)`` calls would consume — with the
  per-parent remainders recovered from a ``uint64`` cumulative sum
  (wraparound *is* the Z\\ :sub:`2^64` group operation).
* **Dedup runs** (:func:`_dedup_run`) — first-wins dedup against the
  partition memo with ``np.unique`` pre-collapsing duplicate keys inside
  the run, so the memo dict is touched once per distinct key.
* **Fused branch+count runs** (:func:`_fused_branch_count_run`) — the
  k-hop hot loop after plan-level fusion
  (:class:`~repro.core.fused.FusedMinDistCount`): memo-pruned distance
  updates with the count partial absorbed in bulk and only loop
  continuations materialized.

Everything else falls back to :meth:`RunDrain.execute_batch`, the exact
reference batched body — which is what makes per-run dispatch safe: every
path reproduces the same simulated trajectory, so mixing fast paths and
fallbacks within one drain is invisible to simulated time.

Equivalence constraints honored throughout (the fuzz suites assert them):

* float cost accumulation keeps the scalar path's exact addition order —
  per-element array expressions are bit-equal to the scalar expression,
  and the drain's running ``cpu`` sum is accumulated sequentially in run
  order (never ``np.sum``, which reduces pairwise);
* weight arithmetic stays in Z\\ :sub:`2^64` (``uint64`` wraparound);
  finished-weight totals are summed as exact Python ints because the
  reference accumulates arbitrary-precision;
* the fast paths are only entered when the drain-wide gate holds
  (partitioned state, coalesced progress, tracing off) — the shapes whose
  observable side effects are exactly "children + cost + finished weight".

NumPy is an optional dependency (``pip install 'repro[fast]'``):
``HAVE_NUMPY`` gates kernel auto-selection, and
:data:`VECTOR_KERNEL` is constructed either way so importing this module
never requires NumPy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set

from repro.core.fused import FusedChain, FusedMinDistCount
from repro.core.steps import DedupOp, ExpandOp
from repro.core.traverser import Traverser
from repro.graph.placement import Placement
from repro.graph.property_graph import BOTH
from repro.runtime.runs import RunDrain, get_drain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.worker import Worker

try:  # pragma: no cover - exercised via the numpy-absent fallback tests
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = ["HAVE_NUMPY", "VectorKernel", "VECTOR_KERNEL"]

#: Runs shorter than this go straight to the reference batched body: the
#: fixed NumPy dispatch overhead outweighs the bulk win on tiny runs.
#: Purely a wall-clock knob — both paths are bit-for-bit identical.
MIN_VECTOR_RUN = 8

if HAVE_NUMPY:
    _U64 = np.uint64


def _expand_run(d: RunDrain, op: ExpandOp, run: List[Traverser]) -> bool:
    """Vectorized CSR expansion of one run. Returns False (caller falls
    back) when the run's shape is outside the proven-equivalent fast path.

    All gates and pure computation happen before the RNG draw or any
    mutation, so a False return leaves the simulation state untouched.
    """
    if op.edge_slot is not None or op.edge_prop is not None:
        return False
    direction = op.direction
    label = op.edge_label
    if label is None or direction == BOTH:
        return False
    store = d.ctx.store
    adjacency = getattr(store, "adjacency", None)
    if adjacency is None:
        return False
    csr = adjacency(direction, label)
    if csr is None:
        return False
    next_idx = op.next_idx
    c_stage, c_mode, _child_op = d.route_info[next_idx]
    if c_mode not in ("vertex", "free", "fixed"):
        return False
    partitioner = d.partitioner
    if c_mode != "fixed" and not isinstance(partitioner, Placement):
        return False

    n = len(run)
    local_ix = store.local_index_map()
    offsets, targets = csr.np_arrays()
    lis = np.fromiter((local_ix[t.vertex] for t in run), np.int64, count=n)
    lo = offsets[lis]
    deg = offsets[lis + 1] - lo
    total = int(deg.sum())
    self_pid = d.self_pid

    if total:
        cum = np.cumsum(deg)
        starts = cum - deg
        # Child k of parent i sits at CSR position lo[i] + (k_global -
        # starts[i]): one gather instead of a slice per parent.
        child_v = targets[np.repeat(lo - starts, deg) + np.arange(total)]
        if c_mode == "fixed":
            pid_l = [d.barrier_route] * total
        else:
            if c_mode == "free" and int(child_v.min()) < 0:
                # Negative (pseudo) vertices route positionally under
                # "free"; CSR targets are real gids, so this never fires
                # in practice — bail to the reference loop if it does.
                return False
            pids = partitioner.bulk_lookup(child_v)
            if pids is None:
                # The placement cannot answer in bulk (relocations with
                # no dense table): take the exact reference loop.
                return False
            pid_l = pids.tolist()
        # Weight splits, scalar-exact: parents with deg >= 2 consume
        # deg - 1 sequential 64-bit draws; the last child takes the
        # remainder in Z_{2^64}. One getrandbits(64*m) consumes exactly
        # the Mersenne Twister words of m sequential getrandbits(64)
        # calls, recovered little-endian.
        ws = np.array([t.weight % d.modulus for t in run], dtype=np.uint64)
        ends = np.repeat(cum, deg)
        is_last = np.arange(total) == ends - 1
        cw = np.empty(total, dtype=np.uint64)
        m = total - int(np.count_nonzero(deg))
        if m:
            big = d.getrandbits(64 * m)
            draws = np.frombuffer(big.to_bytes(8 * m, "little"), dtype=np.uint64)
            cw[~is_last] = draws
            segdraws = cw.copy()
            segdraws[is_last] = 0
            cs = np.cumsum(segdraws)  # uint64 wraparound == group addition
            prev = np.where(starts > 0, cs[starts - 1], _U64(0))
            last_w = ws - (cs[cum - 1] - prev)  # (w - sum(draws)) mod 2^64
        else:
            last_w = ws
        cw[is_last] = last_w[deg > 0]
        cw_l = cw.tolist()
        cv_l = child_v.tolist()
    else:
        cv_l = cw_l = pid_l = []

    # Per-parent step cost, bit-equal to the scalar expression
    # cpu_scale * (1*step_base + deg*edge + 0*memo + 0*prop): the +0.0
    # terms are exact for the non-negative partial sums, and float64
    # elementwise ops match Python float arithmetic bit for bit.
    cost_l = (d.cpu_scale * (d.step_base_us + deg * d.edge_us)).tolist()
    deg_l = deg.tolist()

    # --- emission: replay the reference loop with precomputed arrays ----
    query_id = d.run_qid
    op_idx = d.run_op_idx
    stage = d.run_stage
    t = d.t
    cpu = d.cpu
    worker = d.worker
    queue_append = d.queue.append
    dist_slot = op.dist_slot
    serialize_us = d.serialize_us
    track_inflight = d.track_inflight
    note_outbound = d.note_outbound
    trav_buffers = d.trav_buffers
    buffer_bytes = d.buffer_bytes
    flush_threshold = d.flush_threshold
    flush = d.flush
    size_cache = d.size_cache
    size_cache_get = size_cache.get
    last_payload = d.last_payload
    last_size = d.last_size
    local_bufs = d.local_bufs
    local_bytes = d.local_bytes
    fin_total = 0
    fin_count = 0
    local_count = 0
    k = 0
    for i, trav in enumerate(run):
        cpu += cost_l[i]
        dg = deg_l[i]
        if dg:
            payload = trav.payload
            if dist_slot is not None:
                dist = payload[dist_slot]
                dist = 1 if dist is None else dist + 1
                payload = (
                    payload[:dist_slot] + (dist,) + payload[dist_slot + 1 :]
                )
            loops = trav.loops + 1
            for _ in range(dg):
                pid = pid_l[k]
                child = Traverser(
                    query_id, cv_l[k], next_idx, payload, cw_l[k],
                    c_stage, loops,
                )
                k += 1
                if pid == self_pid:
                    queue_append(child)
                    local_count += 1
                else:
                    cpu += serialize_us
                    # Inlined _buffer_traverser, identical to the
                    # reference batched body in runs.py.
                    if track_inflight:
                        note_outbound(query_id)
                    dst_node = pid // d.ppn
                    buf = local_bufs[dst_node]
                    if buf is None:
                        buf = trav_buffers.get(dst_node)
                        if buf is None:
                            buf = trav_buffers[dst_node] = []
                        local_bufs[dst_node] = buf
                        local_bytes[dst_node] = buffer_bytes.get(dst_node, 0)
                    if payload is last_payload:
                        size = last_size
                    else:
                        last_payload = payload
                        pk = id(payload)
                        size = size_cache_get(pk)
                        if size is None:
                            size = child.estimated_size_bytes()
                            size_cache[pk] = size
                        last_size = size
                    buf.append((pid, child, size))
                    nbytes = local_bytes[dst_node] + size
                    local_bytes[dst_node] = nbytes
                    if nbytes >= flush_threshold:
                        buffer_bytes[dst_node] = nbytes
                        local_bufs[dst_node] = None
                        cpu += flush(dst_node, t + cpu)
        else:
            weight = trav.weight
            if weight:
                fin_total += weight
                fin_count += 1
    if local_count:
        key = (query_id, c_stage)
        stage_counts = d.stage_counts
        stage_counts[key] = stage_counts.get(key, 0) + local_count
    if fin_count:
        worker._accum(query_id, stage).absorb_many(fin_total, fin_count)
    d.cpu = cpu
    d.last_payload = last_payload
    d.last_size = last_size
    d.steps += n
    d.edges_scanned += total
    d.qmetrics.steps_executed += n
    op_steps = d.op_steps
    op_steps[op_idx] = op_steps.get(op_idx, 0) + n
    if total:
        d.spawned_total += total
        op_spawned = d.op_spawned
        op_spawned[op_idx] = op_spawned.get(op_idx, 0) + total
        d.qmetrics.traversers_spawned += total
    return True


def _dedup_run(d: RunDrain, op: DedupOp, run: List[Traverser]) -> bool:
    """Vectorized first-wins dedup for the default (vertex-key) shape.

    ``np.unique`` collapses in-run duplicates so the partition memo dict
    is consulted once per distinct key; admitted children inherit the full
    parent weight and are always partition-local (the op routed here by
    the same hash its children route by).
    """
    if op.routing_mode != "vertex":  # custom key_fn — reference path
        return False
    next_idx = op.next_idx
    c_stage, c_mode, _child_op = d.route_info[next_idx]
    if c_mode not in ("vertex", "free"):
        return False
    n = len(run)
    vs = np.fromiter((t.vertex for t in run), np.int64, count=n)
    if int(vs.min()) < 0:
        return False
    _uniq, first_ix = np.unique(vs, return_index=True)
    vs_l = vs.tolist()
    admit = bytearray(n)
    tbl = d.ctx.memo.table(op.memo_label)
    for j in first_ix.tolist():
        v = vs_l[j]
        if v not in tbl:
            tbl[v] = True
            admit[j] = 1
    # Uniform (1, 0, 1, 0) cost, priced once with the scalar expression.
    cost_us = d.cpu_scale * (
        1 * d.step_base_us
        + 0 * d.edge_us
        + 1 * d.memo_op_us
        + 0 * d.prop_us
    )
    query_id = d.run_qid
    stage = d.run_stage
    modulus = d.modulus
    cpu = d.cpu
    queue_append = d.queue.append
    fin_total = 0
    fin_count = 0
    local_count = 0
    for i, trav in enumerate(run):
        cpu += cost_us
        if admit[i]:
            queue_append(
                Traverser(
                    query_id, trav.vertex, next_idx, trav.payload,
                    trav.weight % modulus, c_stage, trav.loops,
                )
            )
            local_count += 1
        else:
            weight = trav.weight
            if weight:
                fin_total += weight
                fin_count += 1
    if local_count:
        key = (query_id, c_stage)
        stage_counts = d.stage_counts
        stage_counts[key] = stage_counts.get(key, 0) + local_count
    if fin_count:
        d.worker._accum(query_id, stage).absorb_many(fin_total, fin_count)
    d.cpu = cpu
    d.steps += n
    d.memo_ops_total += n
    d.qmetrics.steps_executed += n
    op_idx = d.run_op_idx
    op_steps = d.op_steps
    op_steps[op_idx] = op_steps.get(op_idx, 0) + n
    if local_count:
        d.spawned_total += local_count
        op_spawned = d.op_spawned
        op_spawned[op_idx] = op_spawned.get(op_idx, 0) + local_count
        d.qmetrics.traversers_spawned += local_count
    return True


def _chain_run(d: RunDrain, op: FusedChain, run: List[Traverser]) -> bool:
    """Specialized drain for :class:`FusedChain` runs.

    A chain emits at most one child per traverser, always targeting the
    single static ``next_idx`` — so the run's routing decision can be
    hoisted out of the per-child loop entirely. Two shapes qualify:

    * the successor is vertex/free-routed: every child lands on this
      partition (the chain op itself was routed here by the same rule),
      so survivors are bulk-appended to the local queue with one
      stage-count bump;
    * the successor is a barrier (``fixed`` routing): every child goes to
      the one barrier partition — the buffer slot, destination node, and
      payload-size cache lookups are hoisted, while serialize cost and
      threshold-flush instants replay the reference path exactly.

    The chain's Python link walk (``apply_batch``) still runs — it is
    the semantics — but everything around it collapses.
    """
    next_idx = op.next_idx
    c_stage, c_mode, _child_op = d.route_info[next_idx]
    rmode = op.routing_mode
    if c_mode == "fixed":
        pid = d.barrier_route
        local = pid == d.self_pid
    elif c_mode == "vertex" or c_mode == "free":
        if c_mode != rmode:
            # Vertex- and free-routing agree only for real (non-negative)
            # vertex ids; synthetic ids hash differently per mode.
            vs = np.fromiter(
                (t.vertex for t in run), np.int64, count=len(run)
            )
            if int(vs.min()) < 0:
                return False
        local = True
        pid = d.self_pid
    else:
        return False
    n = len(run)
    outcome = op.apply_batch(d.ctx, run)
    spec_rows = outcome.children
    costs = outcome.costs
    # Cost pricing: chain cost tuples are shared by identity (full-walk
    # vs. per-drop prefixes), so the identity cache replays exact floats.
    cpu_scale = d.cpu_scale
    step_base_us = d.step_base_us
    edge_us = d.edge_us
    memo_op_us = d.memo_op_us
    prop_us = d.prop_us
    query_id = d.run_qid
    stage = d.run_stage
    modulus = d.modulus
    cpu = d.cpu
    prev_tuple = None
    prev_cost_us = 0.0
    prev_edges = 0
    prev_memo_ops = 0
    edges_scanned = 0
    memo_ops_total = 0
    fin_total = 0
    fin_count = 0
    spawned = 0
    if local:
        queue_append = d.queue.append
        for trav, specs, ct in zip(run, spec_rows, costs):
            if ct is prev_tuple:
                cost_us = prev_cost_us
                edges = prev_edges
                memo_ops = prev_memo_ops
            else:
                base, edges, memo_ops, props = ct
                cost_us = cpu_scale * (
                    base * step_base_us
                    + edges * edge_us
                    + memo_ops * memo_op_us
                    + props * prop_us
                )
                prev_tuple = ct
                prev_cost_us = cost_us
                prev_edges = edges
                prev_memo_ops = memo_ops
            cpu += cost_us
            edges_scanned += edges
            memo_ops_total += memo_ops
            if specs:
                vertex, _c_idx, payload, loops = specs[0]
                queue_append(
                    Traverser(
                        query_id, vertex, next_idx, payload,
                        trav.weight % modulus, c_stage, loops,
                    )
                )
                spawned += 1
            else:
                weight = trav.weight
                if weight:
                    fin_total += weight
                    fin_count += 1
        if spawned:
            key = (query_id, c_stage)
            stage_counts = d.stage_counts
            stage_counts[key] = stage_counts.get(key, 0) + spawned
    else:
        serialize_us = d.serialize_us
        t = d.t
        track_inflight = d.track_inflight
        note_outbound = d.note_outbound
        trav_buffers = d.trav_buffers
        buffer_bytes = d.buffer_bytes
        flush_threshold = d.flush_threshold
        flush = d.flush
        size_cache = d.size_cache
        size_cache_get = size_cache.get
        last_payload = d.last_payload
        last_size = d.last_size
        local_bufs = d.local_bufs
        local_bytes = d.local_bytes
        dst_node = pid // d.ppn
        for trav, specs, ct in zip(run, spec_rows, costs):
            if ct is prev_tuple:
                cost_us = prev_cost_us
                edges = prev_edges
                memo_ops = prev_memo_ops
            else:
                base, edges, memo_ops, props = ct
                cost_us = cpu_scale * (
                    base * step_base_us
                    + edges * edge_us
                    + memo_ops * memo_op_us
                    + props * prop_us
                )
                prev_tuple = ct
                prev_cost_us = cost_us
                prev_edges = edges
                prev_memo_ops = memo_ops
            cpu += cost_us
            edges_scanned += edges
            memo_ops_total += memo_ops
            if specs:
                vertex, _c_idx, payload, loops = specs[0]
                child = Traverser(
                    query_id, vertex, next_idx, payload,
                    trav.weight % modulus, c_stage, loops,
                )
                cpu += serialize_us
                if track_inflight:
                    note_outbound(query_id)
                buf = local_bufs[dst_node]
                if buf is None:
                    buf = trav_buffers.get(dst_node)
                    if buf is None:
                        buf = trav_buffers[dst_node] = []
                    local_bufs[dst_node] = buf
                    local_bytes[dst_node] = buffer_bytes.get(dst_node, 0)
                if payload is last_payload:
                    size = last_size
                else:
                    last_payload = payload
                    pk = id(payload)
                    size = size_cache_get(pk)
                    if size is None:
                        size = child.estimated_size_bytes()
                        size_cache[pk] = size
                    last_size = size
                buf.append((pid, child, size))
                nbytes = local_bytes[dst_node] + size
                local_bytes[dst_node] = nbytes
                if nbytes >= flush_threshold:
                    buffer_bytes[dst_node] = nbytes
                    local_bufs[dst_node] = None
                    cpu += flush(dst_node, t + cpu)
                spawned += 1
            else:
                weight = trav.weight
                if weight:
                    fin_total += weight
                    fin_count += 1
        d.last_payload = last_payload
        d.last_size = last_size
    if fin_count:
        d.worker._accum(query_id, stage).absorb_many(fin_total, fin_count)
    d.cpu = cpu
    d.steps += n
    d.edges_scanned += edges_scanned
    d.memo_ops_total += memo_ops_total
    d.qmetrics.steps_executed += n
    op_idx = d.run_op_idx
    op_steps = d.op_steps
    op_steps[op_idx] = op_steps.get(op_idx, 0) + n
    if spawned:
        d.spawned_total += spawned
        op_spawned = d.op_spawned
        op_spawned[op_idx] = op_spawned.get(op_idx, 0) + spawned
        d.qmetrics.traversers_spawned += spawned
    return True


def _fused_branch_count_run(
    d: RunDrain, op: FusedMinDistCount, run: List[Traverser]
) -> bool:
    """The fused k-hop hot loop: memo-pruned distance update + bulk count
    absorption + loop-only continuation. Children are always local (the
    loop target is the vertex-routed Expand that sent us here)."""
    c_stage, c_mode, _child_op = d.route_info[op.loop_idx]
    if c_mode != "vertex":
        return False
    memo = d.ctx.memo
    tbl = memo.table(op.memo_label)
    tbl_get = tbl.get
    dist_slot = op.dist_slot
    max_dist = op.max_dist
    loop_idx = op.loop_idx
    # The two cost points of the fused op, priced with the scalar
    # expression: pruned (1,0,1,0) and admitted (2,0,2,0).
    cost_pruned = d.cpu_scale * (
        1 * d.step_base_us
        + 0 * d.edge_us
        + 1 * d.memo_op_us
        + 0 * d.prop_us
    )
    cost_admit = d.cpu_scale * (
        2 * d.step_base_us
        + 0 * d.edge_us
        + 2 * d.memo_op_us
        + 0 * d.prop_us
    )
    count_first = op.count_first
    query_id = d.run_qid
    stage = d.run_stage
    modulus = d.modulus
    cpu = d.cpu
    queue_append = d.queue.append
    n = len(run)
    counted = 0
    memo_ops = 0
    fin_total = 0
    fin_count = 0
    local_count = 0
    for trav in run:
        vertex = trav.vertex
        dist = trav.payload[dist_slot]
        old = tbl_get(vertex)
        if old is not None and dist >= old:
            cpu += cost_pruned
            memo_ops += 1
            weight = trav.weight
            if weight:
                fin_total += weight
                fin_count += 1
            continue
        tbl[vertex] = dist
        if old is None or not count_first:
            counted += 1
        memo_ops += 2
        cpu += cost_admit
        if dist < max_dist:
            queue_append(
                Traverser(
                    query_id, vertex, loop_idx, trav.payload,
                    trav.weight % modulus, c_stage, trav.loops,
                )
            )
            local_count += 1
        else:
            weight = trav.weight
            if weight:
                fin_total += weight
                fin_count += 1
    if counted:
        atbl = memo.table(op.agg_label)
        atbl["partial"] = atbl.get("partial", 0) + counted
    if local_count:
        key = (query_id, c_stage)
        stage_counts = d.stage_counts
        stage_counts[key] = stage_counts.get(key, 0) + local_count
    if fin_count:
        d.worker._accum(query_id, stage).absorb_many(fin_total, fin_count)
    d.cpu = cpu
    d.steps += n
    d.memo_ops_total += memo_ops
    d.qmetrics.steps_executed += n
    op_idx = d.run_op_idx
    op_steps = d.op_steps
    op_steps[op_idx] = op_steps.get(op_idx, 0) + n
    if local_count:
        d.spawned_total += local_count
        op_spawned = d.op_spawned
        op_spawned[op_idx] = op_spawned.get(op_idx, 0) + local_count
        d.qmetrics.traversers_spawned += local_count
    return True


class VectorKernel:
    """Array-programmed execution: NumPy bulk ops on proven run shapes,
    exact reference fallback elsewhere.

    Stateless (one module singleton shared by every worker), like the
    other kernels. Simulated output is bit-for-bit identical to the
    scalar and batch tiers — the fast paths replay the same cost
    arithmetic, RNG word stream, routing decisions, and buffer-flush
    instants; the fuzzed equivalence suites assert it.
    """

    def drain(
        self, worker: "Worker", t: float, touched: Optional[Set[int]]
    ) -> float:
        """Pop and execute up to ``batch_size`` traversers as runs,
        dispatching each run to a vector fast path when its shape
        qualifies."""
        d = get_drain(worker, t, touched)
        execute_batch = d.execute_batch
        pop_run = d.pop_run
        # The fast paths only model "children + cost + finished weight":
        # shared-state penalties, per-execution progress messages, and
        # trace events need the reference loop's per-element structure.
        fast_ok = (not d.shared) and d.coalesced and d.trace is None
        while (run := pop_run()) is not None:
            if fast_ok:
                op = d.ops[d.run_op_idx]
                top = type(op)
                # The chain path is pure-Python specialization (no array
                # setup), so it pays off at any run length; the NumPy
                # paths need MIN_VECTOR_RUN elements to amortize.
                if top is FusedChain:
                    if _chain_run(d, op, run):
                        continue
                elif len(run) >= MIN_VECTOR_RUN:
                    if top is ExpandOp:
                        if _expand_run(d, op, run):
                            continue
                    elif top is FusedMinDistCount:
                        if _fused_branch_count_run(d, op, run):
                            continue
                    elif top is DedupOp:
                        if _dedup_run(d, op, run):
                            continue
            execute_batch(run)
        return d.finish()


#: Shared stateless instance. Constructed even when NumPy is absent —
#: ``kernel_for`` never hands it out without ``HAVE_NUMPY``.
VECTOR_KERNEL = VectorKernel()
