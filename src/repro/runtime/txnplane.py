"""The transaction plane: snapshot reads under concurrent writers.

Wires the dormant transactional store (:mod:`repro.txn`) into the layered
async runtime (paper §IV-C, the Fig 7 mixed workload):

* **Writers** — update streams (e.g. the LDBC SNB UP operations of
  :mod:`repro.ldbc.queries.updates`) are scheduled on the simulated clock
  and routed through the MV2PL :class:`~repro.txn.manager.TransactionManager`
  against the TEL-backed multi-version delta. Each update charges its
  service time to the worker owning its home vertex's partition, so
  concurrent reads queue behind writers exactly as the paper's latency
  curves require. Commit/abort hooks emit ``TXN_BEGIN`` / ``TXN_COMMIT`` /
  ``TXN_ABORT`` trace events, and every commit schedules an LCT broadcast
  (optionally delayed by ``EngineConfig.lct_broadcast_lag_us`` — staleness
  is the only permitted cache error).
* **Readers** — :meth:`TxnPlane.pin` stamps every admitted query with the
  tracker node's cached LCT. The query's per-partition
  :class:`~repro.core.steps.StepContext` then reads through a
  :class:`~repro.txn.view.SnapshotStore` at that timestamp instead of the
  raw CSR store, so scalar, batch, and vector kernels all see the same
  version cut — commits after the pin stay invisible for the query's whole
  life, including crash-recovery retries (the pin survives the retry).
* **Recovery composition** — when a worker crashes, the recovery manager
  calls :meth:`TxnPlane.replay_after_crash` *synchronously, before* the
  checkpoint plane's restore events run: the version scan
  (:func:`repro.txn.recovery.recover`) discards torn post-LCT versions and
  emits ``VERSION_REPLAY``, then updates parked behind the torn commit
  re-apply. Traversals therefore never resume over a delta the recovery
  scan has not certified.
* **Placement** — the plane's manager shares the **graph's** placement
  (not a private hash), and :meth:`TxnPlane.reshard` makes delta rows
  follow live migration's vertex relocations (the PR9 dormant-code rot).

This module sits between ``checkpoint`` and ``lifecycle`` in the runtime
layering (``tools/check_layering.py``); it is also the only runtime module
allowed to import :mod:`repro.txn` — raw TEL access from other layers is
banned by the same tool.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TransactionAborted
from repro.runtime.trace import (
    SNAPSHOT_PIN,
    TXN_ABORT,
    TXN_BEGIN,
    TXN_COMMIT,
    VERSION_REPLAY,
)
from repro.txn.manager import TransactionManager
from repro.txn.recovery import RecoveryReport, recover
from repro.txn.view import SnapshotGraph, SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import AsyncPSTMEngine
    from repro.txn.transaction import Transaction

__all__ = ["TxnPlane", "VERSION_BYTES"]

#: modeled wire size of one shipped TEL/property version record
#: (neighbor + eid + two timestamps + header), for migration cost
VERSION_BYTES = 48

#: an update's body: receives the manager, begins/commits its own txns
UpdateFn = Callable[[TransactionManager], Any]


class TxnPlane:
    """Engine-attached coordinator for writers, snapshots, and replay."""

    def __init__(self, engine: "AsyncPSTMEngine") -> None:
        self.engine = engine
        # Share the graph's placement so base and delta always agree on
        # ownership — including after live migration relocates vertices.
        self.txm = TransactionManager(
            engine.graph.num_partitions, partitioner=engine.graph.partitioner
        )
        self.lag_us = engine.config.lct_broadcast_lag_us
        self._nodes = list(range(engine.nodes))
        # Snapshot stores are immutable-at-ts views; one per (pid, ts) is
        # shared by every query pinned at that cut.
        self._stores: Dict[Tuple[int, int], SnapshotStore] = {}
        # Updates parked behind a torn commit: a crashed manager site
        # cannot commit, so later writers wait for the recovery scan.
        self._deferred: List[Tuple[UpdateFn, str, float, Optional[int]]] = []
        self.updates_applied = 0
        self.updates_deferred = 0
        txm = self.txm
        txm.on_begin = self._on_begin
        txm.on_commit = self._on_commit
        txm.on_abort = self._on_abort

    # -- snapshot pinning (the read path) ----------------------------------

    def pin(self, session) -> int:
        """Pin an admitted query to the tracker node's cached LCT.

        Called once per query at admission; the timestamp survives crash
        retries and checkpoint restores (the session object persists), so
        a recovered query replays against the *same* version cut and its
        rows stay bit-identical to the fault-free run.
        """
        ts = self.txm.cached_lct(self.engine.tracker_node)
        session.snapshot_ts = ts
        self.engine.metrics.snapshot_pins += 1
        trace = self.engine.trace
        if trace is not None:
            trace.emit(SNAPSHOT_PIN, session.query_id, ts=ts)
        return ts

    def store_for(self, pid: int, ts: int) -> SnapshotStore:
        """The partition's snapshot store at a pinned timestamp (cached)."""
        key = (pid, ts)
        store = self._stores.get(key)
        if store is None:
            store = SnapshotStore(
                self.engine.runtimes[pid].store,
                self.txm.partitions[pid],
                ts,
                self.engine.graph.partitioner,
            )
            self._stores[key] = store
        return store

    def snapshot_graph(self, ts: Optional[int] = None) -> SnapshotGraph:
        """A cluster-wide snapshot view (solo-run equivalence checks).

        Defaults to the tracker node's cached LCT — the cut :meth:`pin`
        would stamp on a query admitted right now.
        """
        if ts is None:
            ts = self.txm.cached_lct(self.engine.tracker_node)
        return SnapshotGraph(self.engine.graph, self.txm.partitions, ts)

    # -- the write path ----------------------------------------------------

    def schedule_update(
        self,
        at_us: float,
        apply_fn: UpdateFn,
        *,
        label: str = "UP",
        service_us: float = 0.0,
        home_vid: Optional[int] = None,
        tear: bool = False,
    ) -> None:
        """Schedule one update transaction at a simulated instant.

        ``apply_fn(txm)`` runs the whole transaction (begin → buffer →
        commit) against the plane's manager. ``service_us`` is charged to
        the worker owning ``home_vid``'s partition (the first worker when
        no home vertex is given), modeling writer/reader interference.
        ``tear=True`` arms the torn-commit fault first: the update's
        commit applies its versions but "crashes" before the commit
        record, wedging the manager until :meth:`replay_after_crash`.
        """
        self.engine.clock.schedule_at(
            at_us,
            lambda: self._run_update(apply_fn, label, service_us, home_vid, tear),
        )

    def apply_update(
        self,
        apply_fn: UpdateFn,
        *,
        label: str = "UP",
        service_us: float = 0.0,
        home_vid: Optional[int] = None,
        tear: bool = False,
    ) -> None:
        """Apply one update now (or park it while the manager is wedged).

        The immediate-mode counterpart of :meth:`schedule_update`, for
        callers already running inside a clock event (e.g. the LDBC mixed
        workload driver's arrival callbacks).
        """
        self._run_update(apply_fn, label, service_us, home_vid, tear)

    def _run_update(
        self,
        apply_fn: UpdateFn,
        label: str,
        service_us: float,
        home_vid: Optional[int],
        tear: bool,
    ) -> None:
        if self.txm.wedged:
            # The manager site is down mid-commit: park until the
            # recovery scan heals it. Re-applied in arrival order.
            self._deferred.append((apply_fn, label, service_us, home_vid))
            self.updates_deferred += 1
            return
        if tear:
            self.txm.arm_tear()
        self._apply_update(apply_fn, label, service_us, home_vid)

    def _apply_update(
        self,
        apply_fn: UpdateFn,
        label: str,
        service_us: float,
        home_vid: Optional[int],
    ) -> None:
        try:
            apply_fn(self.txm)
        except TransactionAborted:
            return  # no-wait MV2PL: the abort hook already counted it
        self.updates_applied += 1
        if service_us > 0:
            pid = 0 if home_vid is None else self.engine.graph.partitioner(home_vid)
            workers = self.engine.workers
            workers[pid % len(workers)].add_setup_cost(
                self.engine.clock.now, service_us
            )

    # -- manager hooks -----------------------------------------------------

    def _on_begin(self, txn: "Transaction") -> None:
        trace = self.engine.trace
        if trace is not None:
            trace.emit(TXN_BEGIN, -1, txn=txn.txn_id, read_ts=txn.read_ts)

    def _on_commit(self, txn: "Transaction", commit_ts: int) -> None:
        engine = self.engine
        engine.metrics.txn_commits += 1
        trace = engine.trace
        if trace is not None:
            trace.emit(
                TXN_COMMIT, -1, txn=txn.txn_id, commit_ts=commit_ts,
                ops=len(txn.writes),
            )
        # LCT broadcast: instantaneous, or delayed by the configured lag —
        # a delayed broadcast carries the watermark it left the manager
        # with, so caches are stale-but-never-ahead.
        if self.lag_us > 0:
            lct = self.txm.lct
            engine.clock.schedule_at(
                engine.clock.now + self.lag_us,
                lambda: self.txm.broadcast_lct(self._nodes, lct),
            )
        else:
            self.txm.broadcast_lct(self._nodes)

    def _on_abort(self, txn: "Transaction", reason: str) -> None:
        self.engine.metrics.txn_aborts += 1
        trace = self.engine.trace
        if trace is not None:
            trace.emit(TXN_ABORT, -1, txn=txn.txn_id, reason=reason)

    # -- crash-recovery composition ----------------------------------------

    def replay_after_crash(self, wid: int) -> RecoveryReport:
        """Replay the version log — strictly before traversal restore.

        Called synchronously from the recovery manager's crash branch:
        the scan (paper §IV-C restart: "remove all versions with
        timestamps larger than LCT") discards torn versions, heals the
        wedged manager, and re-applies parked updates — all before the
        deferred checkpoint-restore events resume any traversal.
        """
        txm = self.txm
        report = recover(txm.partitions, txm.lct)
        txm.heal()
        engine = self.engine
        engine.metrics.txn_replays += 1
        trace = engine.trace
        if trace is not None:
            trace.emit(
                VERSION_REPLAY, -1, wid=wid, lct=report.lct,
                partitions=report.partitions_scanned,
                discarded=report.versions_discarded,
            )
        deferred, self._deferred = self._deferred, []
        for apply_fn, label, service_us, home_vid in deferred:
            self._apply_update(apply_fn, label, service_us, home_vid)
        return report

    # -- placement relocation ----------------------------------------------

    def reshard(self, applied: Dict[int, int]) -> int:
        """Make delta rows follow a live-migration placement flip.

        Returns the number of version records moved (the migrator adds
        their modeled bytes to the shipping cost). Cached snapshot stores
        and session contexts are dropped — ownership answers changed, so
        views rebuild lazily against the relocated delta.
        """
        moved = self.txm.reshard(applied)
        self._stores.clear()
        for session in self.engine.sessions.values():
            session._contexts = [None] * len(self.engine.runtimes)
        return moved
