"""Hardware profiles and the operator/network cost model.

The paper's testbed (paper §V): 8 nodes, 2× Intel Xeon Gold 6240R (48 cores
per node), 384 GB RAM, 200 Gbps interconnect. We encode that as the default
:class:`HardwareProfile`; Fig 13's "legacy hardware" sweep is expressed by
scaling ``network_gbps`` and ``cores_per_node``.

:class:`CostModel` prices the event counts the operators report
(:class:`~repro.core.steps.OpCost`) and the network primitives the two-tier
I/O scheduler performs. All constants are in **microseconds** of simulated
time and were chosen so absolute latencies land in the paper's
millisecond-scale ballpark; the benchmark shapes (who wins, crossovers) are
what the reproduction preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.steps import OpCost
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class HardwareProfile:
    """Per-node hardware characteristics."""

    name: str = "modern"
    cores_per_node: int = 48
    ram_gb: float = 384.0
    network_gbps: float = 200.0
    #: one-way inter-node wire latency (switch + propagation), µs
    network_latency_us: float = 5.0
    #: per-packet NIC/driver overhead, µs (limits packet rate)
    nic_packet_overhead_us: float = 1.0
    #: shared-memory hand-off latency between workers on one node, µs
    shm_latency_us: float = 0.3

    @property
    def bytes_per_us(self) -> float:
        """Usable NIC bandwidth in bytes per microsecond."""
        return self.network_gbps * 1e9 / 8 / 1e6

    def scaled(self, gbps: float = None, cores: int = None, name: str = None) -> "HardwareProfile":
        """A derived profile with reduced bandwidth and/or cores (Fig 13)."""
        return replace(
            self,
            name=name or self.name,
            network_gbps=gbps if gbps is not None else self.network_gbps,
            cores_per_node=cores if cores is not None else self.cores_per_node,
        )


#: The paper's evaluation cluster.
MODERN = HardwareProfile()

#: Fig 13 legacy configurations.
LEGACY_NET_10G = MODERN.scaled(gbps=10.0, name="10GbE")
LEGACY_NET_1G = MODERN.scaled(gbps=1.0, name="1GbE")
LEGACY_CORES_8 = MODERN.scaled(cores=8, name="8-core")
LEGACY_BOTH = MODERN.scaled(gbps=10.0, cores=8, name="10GbE+8-core")


@dataclass(frozen=True)
class CostModel:
    """Prices (µs) for compute and communication events."""

    hardware: HardwareProfile = MODERN

    # -- per-operator compute ------------------------------------------------
    #: fixed cost of dispatching one traverser step
    step_base_us: float = 0.15
    #: scanning / generating one adjacency entry
    edge_us: float = 0.02
    #: one memo read/write
    memo_op_us: float = 0.05
    #: one property access / expression evaluation
    prop_us: float = 0.03

    # -- messaging -------------------------------------------------------------
    #: CPU cost of a send syscall (charged to the flushing worker)
    syscall_us: float = 2.0
    #: CPU cost of serializing one traverser into a buffer
    serialize_us: float = 0.02
    #: CPU cost of handing a buffer to the node combiner (shared memory)
    combiner_handoff_us: float = 0.3
    #: window the node-level combiner waits to merge thread flushes
    nlc_window_us: float = 4.0
    #: progress tracker CPU per message processed
    tracker_msg_us: float = 0.5
    #: coordinator CPU for combining one partial
    combine_partial_us: float = 1.0

    # -- engine-variant penalties ------------------------------------------------
    #: latch acquire/release on shared state (non-partitioned model)
    latch_us: float = 0.12
    #: contention growth per extra *concurrently busy* thread (non-partitioned)
    latch_contention: float = 0.18
    #: NUMA/cache-locality multiplier on all compute when state is shared
    #: across a node's threads instead of partitioned per worker (§V-A2:
    #: PSTM "ensures each worker thread accesses only the memory of its
    #: local NUMA node and improves the CPU cache hit rate")
    shared_locality_factor: float = 1.4
    #: per-(operator × worker) dataflow instantiation cost (Banyan/GAIA)
    operator_instantiation_us: float = 12.0
    #: BSP per-superstep global barrier cost (8-node barrier + straggler
    #: detection tail)
    bsp_barrier_us: float = 150.0
    #: BSP batch-amortization: supersteps process traversers in bulk with
    #: no per-traverser progress tracking, discounting per-step dispatch
    bsp_step_discount: float = 0.82
    #: scale factor on compute (e.g. hand-optimized C++ plugins < 1.0)
    cpu_scale: float = 1.0

    def op_cost_us(self, cost: OpCost) -> float:
        """Price one operator application."""
        return self.cpu_scale * (
            cost.base * self.step_base_us
            + cost.edges * self.edge_us
            + cost.memo_ops * self.memo_op_us
            + cost.props * self.prop_us
        )

    def op_cost_fields_us(
        self, base: int, edges: int, memo_ops: int, props: int
    ) -> float:
        """Price one operator application from unpacked event counts.

        The batch execution path reports costs as plain tuples instead of
        :class:`OpCost` objects; this must stay the *same expression* as
        :meth:`op_cost_us` (same term order — float addition is not
        associative) so batched and scalar runs produce identical simulated
        times.
        """
        return self.cpu_scale * (
            base * self.step_base_us
            + edges * self.edge_us
            + memo_ops * self.memo_op_us
            + props * self.prop_us
        )

    def shared_state_penalty_us(self, cost: OpCost, busy_sharers: int) -> float:
        """Extra cost of latched access to shared memo/graph state.

        ``busy_sharers`` is the number of threads *concurrently* working on
        the shared partition: latch cost is paid always, contention grows
        with concurrency (this is why the paper's non-partitioned model
        loses 3.29× throughput but "only" 46.5% latency).
        """
        per_access = self.latch_us + self.latch_contention * max(busy_sharers - 1, 0)
        return (cost.memo_ops + cost.props + cost.edges * 0.25) * per_access

    def tx_time_us(self, size_bytes: int) -> float:
        """NIC serialization time for one packet."""
        return (
            self.hardware.nic_packet_overhead_us
            + size_bytes / self.hardware.bytes_per_us
        )

    def with_hardware(self, hardware: HardwareProfile) -> "CostModel":
        """A copy priced for a different hardware profile."""
        return replace(self, hardware=hardware)

    def scaled_cpu(self, scale: float) -> "CostModel":
        """A copy with scaled compute costs."""
        return replace(self, cpu_scale=scale)


DEFAULT_COST_MODEL = CostModel()


def validate_cluster(nodes: int, workers_per_node: int, hardware: HardwareProfile) -> None:
    """Reject configurations that oversubscribe the hardware profile."""
    if nodes < 1:
        raise ConfigurationError(f"need at least one node, got {nodes}")
    if workers_per_node < 1:
        raise ConfigurationError(
            f"need at least one worker per node, got {workers_per_node}"
        )
    if workers_per_node > hardware.cores_per_node:
        raise ConfigurationError(
            f"{workers_per_node} workers exceed {hardware.cores_per_node} "
            f"cores per node ({hardware.name})"
        )
