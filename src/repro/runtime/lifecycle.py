"""Query lifecycle: the explicit state machine behind every submission.

Every query the async engine touches moves through one small, validated
state machine::

                      +-----------+
        submit -----> |  QUEUED   | ----------------+
                      +-----------+                 |
                            |                       v
                            | slot acquired    +----------+
                            v                  | REJECTED |  (shed, expired,
                      +-----------+            +----------+   withdrawn)
                      | ADMITTED  |
                      +-----------+
                            | seeds dispatched
                            v
                      +-----------+   ledger hit 1   +--------+
                      |  RUNNING  | ---------------> |  DONE  |
                      +-----------+                  +--------+
                        |       \\
          cooperative   |        \\  non-cooperative cancel /
          cancel        v         \\ retry budget exhausted
                  +------------+   +-----> FAILED or PARTIAL
                  | CANCELLING |
                  +------------+
                        |  reclaimed weight closed the ledger
                        +-----> FAILED or PARTIAL

Voluntary preemption (docs/RECOVERY.md) adds a pause loop on the left::

                  preempt         boundary snapshot
      RUNNING ------------> PAUSING ------------> PAUSED
         ^                     |                    |
         |    slot re-acquired |  final stage       | re-enters the
         +---- ADMITTED <------+--> DONE            | admission queue
                   ^           |                    |
                   |           +--> CANCELLING <----+   (cancel while
                   +--------------------------------+    pausing/paused)

Before this module existed the same facts were scattered over eight
independent booleans on the session (``rejected``, ``timed_out``,
``cancelled``, ``failed``, ...), several of which could be set in
contradictory combinations. Now there is exactly one source of truth:
:class:`QueryLifecycle` validates every transition against
:data:`LEGAL_TRANSITIONS` (an illegal one raises
:class:`~repro.errors.LifecycleError`) and counts it in the engine's
:class:`~repro.runtime.metrics.RunMetrics` so soak harnesses can audit
that no run ever took an edge outside the diagram. The legacy flags
survive as derived, read-only properties.

This module also hosts the session/result types that travel the state
machine: :class:`QuerySession` (runtime state of one in-flight query),
:class:`QueryResult` (outcome, with ``partial``/``rejected`` derived from
the terminal state) and :class:`QueryProfile` (EXPLAIN ANALYZE output).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.machine import PSTMMachine
from repro.core.steps import FixedVertexSource, StepContext
from repro.core.subquery import GatheredPartial, StageCursor
from repro.core.traverser import Traverser, make_root
from repro.core.weight import ROOT_WEIGHT, split_weight
from repro.errors import ExecutionError, LifecycleError
from repro.query.plan import PhysicalPlan
from repro.runtime.metrics import QueryMetrics
from repro.runtime.trace import LIFECYCLE, MEMO_ATTACH

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections import Counter

    from repro.runtime.engine import AsyncPSTMEngine
    from repro.runtime.trace import TraceRecorder


class QueryState(Enum):
    """States of the query lifecycle machine (see the module diagram)."""

    #: created; waiting for dispatch (possibly parked in the admission queue)
    QUEUED = "queued"
    #: holds an execution slot; seeds not yet dispatched
    ADMITTED = "admitted"
    #: executing: traversers live somewhere in the cluster
    RUNNING = "running"
    #: a CANCEL fanned out; waiting for the stage ledger to re-absorb all
    #: outstanding progression weight (docs/OVERLOAD.md)
    CANCELLING = "cancelling"
    #: terminal: completed with exact results
    DONE = "done"
    #: terminal: timed out / cancelled / budget-tripped / retries exhausted
    FAILED = "failed"
    #: terminal: never dispatched (shed, admission expiry, withdrawn)
    REJECTED = "rejected"
    #: terminal: budget cancellation salvaged exact final-stage partials
    PARTIAL = "partial"
    #: a preempt request is outstanding; the query yields at its next
    #: certified stage boundary (docs/RECOVERY.md)
    PAUSING = "pausing"
    #: evicted onto the checkpoint plane; no cluster state remains, the
    #: session waits (usually parked in the admission queue) to resume
    PAUSED = "paused"

    @property
    def terminal(self) -> bool:
        """True for states with no outgoing edges."""
        return self in TERMINAL_STATES


TERMINAL_STATES = frozenset(
    {QueryState.DONE, QueryState.FAILED, QueryState.REJECTED, QueryState.PARTIAL}
)

#: The exhaustive legal-transition table. Anything not listed here raises
#: :class:`~repro.errors.LifecycleError` — there is no other way for a
#: session to change state.
LEGAL_TRANSITIONS = frozenset(
    {
        (QueryState.QUEUED, QueryState.ADMITTED),
        (QueryState.QUEUED, QueryState.REJECTED),
        (QueryState.ADMITTED, QueryState.RUNNING),
        # cancelled between admission and the (deferred) seed dispatch
        (QueryState.ADMITTED, QueryState.FAILED),
        (QueryState.RUNNING, QueryState.CANCELLING),
        (QueryState.RUNNING, QueryState.DONE),
        (QueryState.RUNNING, QueryState.FAILED),
        (QueryState.RUNNING, QueryState.PARTIAL),
        (QueryState.CANCELLING, QueryState.FAILED),
        (QueryState.CANCELLING, QueryState.PARTIAL),
        # -- voluntary preemption (docs/RECOVERY.md) --
        (QueryState.RUNNING, QueryState.PAUSING),
        # forced boundary snapshot taken, cluster state evicted
        (QueryState.PAUSING, QueryState.PAUSED),
        # the final stage terminated before a boundary arrived: the
        # preempt request is overtaken by completion
        (QueryState.PAUSING, QueryState.DONE),
        # cancelled while yielding (ledger still open → cooperative)
        (QueryState.PAUSING, QueryState.CANCELLING),
        # crash-while-pausing recovery exhausted the retry budget, or a
        # non-cooperative cancel landed in the boundary window
        (QueryState.PAUSING, QueryState.FAILED),
        # slot re-acquired: resumes from the boundary checkpoint
        (QueryState.PAUSED, QueryState.ADMITTED),
        # cancelled while paused (checkpoints dropped, closes immediately)
        (QueryState.PAUSED, QueryState.CANCELLING),
    }
)

# Well-known terminal reasons (free-form strings elsewhere, e.g.
# "budget:traversers" or "cancel:caller").
REASON_QUEUE_FULL = "queue_full"
REASON_ADMISSION_TIMEOUT = "admission_timeout"
REASON_RETRY_BUDGET = "retry_budget"


class QueryLifecycle:
    """One query's walk through the state machine.

    Owns the current :class:`QueryState` plus the terminal ``reason``
    string, validates every transition against :data:`LEGAL_TRANSITIONS`,
    and counts each taken edge in a shared counter (the engine passes its
    ``RunMetrics.lifecycle_transitions``) so the whole run's edge set can
    be audited after the fact.
    """

    __slots__ = ("state", "reason", "_counts", "_trace", "_query_id")

    def __init__(self, counts: Optional["Counter"] = None,
                 trace: Optional["TraceRecorder"] = None,
                 query_id: int = -1) -> None:
        self.state = QueryState.QUEUED
        #: why a terminal state was entered ("timeout", "queue_full", ...)
        self.reason: Optional[str] = None
        self._counts = counts
        # Trace events carry the submission-time query id: a crash-retried
        # session keeps its lifecycle (and this id) across attempts.
        self._trace = trace
        self._query_id = query_id

    def to(self, state: QueryState, reason: Optional[str] = None) -> None:
        """Take one validated edge; illegal edges raise LifecycleError."""
        if (self.state, state) not in LEGAL_TRANSITIONS:
            raise LifecycleError(self.state.value, state.value)
        if self._counts is not None:
            self._counts[f"{self.state.value}->{state.value}"] += 1
        if self._trace is not None:
            self._trace.emit(LIFECYCLE, self._query_id, src=self.state.value,
                             dst=state.value, reason=reason)
        self.state = state
        if reason is not None:
            self.reason = reason

    @property
    def terminal(self) -> bool:
        """True once the session reached a terminal state."""
        return self.state in TERMINAL_STATES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        detail = f", reason={self.reason!r}" if self.reason else ""
        return f"QueryLifecycle({self.state.value}{detail})"


@dataclass
class QueryResult:
    """Outcome of one query run.

    ``state`` is the session's terminal lifecycle state; ``partial`` and
    ``rejected`` are derived from it, so the contradictory flag
    combinations the old independent booleans allowed (e.g. a result both
    partial and rejected) are unrepresentable.
    """

    rows: List[Any]
    latency_us: float
    metrics: QueryMetrics
    #: terminal lifecycle state the result was resolved from
    state: QueryState = QueryState.DONE

    @property
    def partial(self) -> bool:
        """True when a budget cancellation salvaged final-stage partials.

        The rows are an exact subset of the full answer (docs/OVERLOAD.md).
        """
        return self.state is QueryState.PARTIAL

    @property
    def rejected(self) -> bool:
        """True when the query never dispatched (admission shed/expiry)."""
        return self.state is QueryState.REJECTED

    @property
    def latency_ms(self) -> float:
        """Simulated latency in milliseconds."""
        return self.latency_us / 1000.0

    @property
    def degraded(self) -> bool:
        """True when the rows come from a crash-recovery re-execution.

        The answer is still exact (the retry starts from invalidated
        memos), but the latency includes the lost attempt(s).
        """
        return self.metrics.degraded


@dataclass
class QueryProfile:
    """EXPLAIN ANALYZE output: per-operator execution statistics."""

    plan: PhysicalPlan
    op_steps: Dict[int, int]
    op_spawned: Dict[int, int]
    metrics: QueryMetrics
    rows: List[Any]

    def steps_of(self, op_idx: int) -> int:
        """Traversers that executed the operator at ``op_idx``."""
        return self.op_steps.get(op_idx, 0)

    def spawned_of(self, op_idx: int) -> int:
        """Children produced by the operator at ``op_idx``."""
        return self.op_spawned.get(op_idx, 0)

    def hottest(self, k: int = 3) -> List[int]:
        """Operator indexes by descending execution count."""
        return sorted(self.op_steps, key=lambda i: -self.op_steps[i])[:k]

    def render(self) -> str:
        """Per-operator table aligned with ``plan.describe()``."""
        lines = [f"profile of {self.plan.name!r} "
                 f"({self.metrics.latency_us / 1000:.3f} ms simulated, "
                 f"{self.metrics.steps_executed} steps)"]
        for op in self.plan.ops:
            executed = self.op_steps.get(op.idx, 0)
            spawned = self.op_spawned.get(op.idx, 0)
            marker = "*" if op.is_barrier else " "
            lines.append(
                f"  [{op.idx:>2}]{marker} {op.name:<32} "
                f"executed={executed:<8d} spawned={spawned}"
            )
        return "\n".join(lines)


class QuerySession:
    """Runtime state of one in-flight query.

    Outcome flags (``rejected``, ``timed_out``, ``cancelled``, ...) are
    read-only views over :attr:`lifecycle` and the per-query metrics; the
    only mutable outcome state is the lifecycle machine itself.
    """

    def __init__(
        self,
        engine: "AsyncPSTMEngine",
        query_id: int,
        plan: PhysicalPlan,
        params: Dict[str, Any],
        on_done: Optional[Callable[["QuerySession"], None]],
    ) -> None:
        self.engine = engine
        self.query_id = query_id
        self.plan = plan
        self.params = params
        self.on_done = on_done
        self.machine = PSTMMachine(
            plan,
            engine.graph.partitioner,
            barrier_route=0 if engine.config.centralized_agg else None,
        )
        self.rng = random.Random((engine.seed << 20) ^ query_id)
        self.cursor = StageCursor(plan, query_id)
        self.qmetrics = QueryMetrics(query_id, plan.name, submitted_at_us=0.0)
        self._contexts: List[Optional[StepContext]] = [None] * engine.num_partitions
        self.expected_partials = 0
        self.partials: List[GatheredPartial] = []
        #: the one source of truth for this query's outcome
        self.lifecycle = QueryLifecycle(
            engine.metrics.lifecycle_transitions,
            trace=getattr(engine, "trace", None), query_id=query_id,
        )
        #: True while parked in the admission wait queue (queue bookkeeping
        #: owned by :class:`~repro.runtime.overload.AdmissionController`;
        #: distinct from the lifecycle because a QUEUED session may also be
        #: a deferred ``at=...`` submission that was never parked)
        self.parked = False
        #: admission priority (lower dispatches sooner)
        self.priority = 0
        #: per-query deadline, armed when the session is dispatched
        self.time_limit_us: Optional[float] = None
        #: simulated submission instant (before any admission wait)
        self.arrival_us = 0.0
        #: (budget, detail) of the resource budget that tripped, if any
        self.budget_error: Optional[Tuple[str, str]] = None
        #: set when a budget cancellation salvaged final-stage partials
        self._salvaged = False
        #: simulated instant the session was evicted to PAUSED (None while
        #: not paused); drives the ``pause_wait_us`` counters on resume
        self.paused_at_us: Optional[float] = None
        #: sampling phase for the memo-byte budget check
        self._memo_check_tick = 0
        #: per-operator execution counts (op index → traversers executed),
        #: the EXPLAIN ANALYZE data behind :meth:`AsyncPSTMEngine.profile`
        self.op_steps: Dict[int, int] = {}
        #: per-operator spawn counts (op index → children produced)
        self.op_spawned: Dict[int, int] = {}
        #: snapshot timestamp pinned at admission by the transaction plane
        #: (docs/TRANSACTIONS.md); None when the plane is disarmed. Set
        #: once and deliberately never reset by crash recovery or
        #: checkpoint restore, so every retry replays the same version cut
        self.snapshot_ts: Optional[int] = None

    # -- derived outcome flags (legacy API, now contradiction-free) --------

    @property
    def state(self) -> QueryState:
        """Current lifecycle state."""
        return self.lifecycle.state

    @property
    def rejected(self) -> bool:
        """True when the admission queue was full at submission (shed)."""
        return (
            self.lifecycle.state is QueryState.REJECTED
            and self.lifecycle.reason == REASON_QUEUE_FULL
        )

    @property
    def admission_timed_out(self) -> bool:
        """True when the admission deadline passed before dispatch."""
        return (
            self.lifecycle.state is QueryState.REJECTED
            and self.lifecycle.reason == REASON_ADMISSION_TIMEOUT
        )

    @property
    def admission_waiting(self) -> bool:
        """True while parked in the admission wait queue."""
        return self.parked

    @property
    def timed_out(self) -> bool:
        """True when the query was aborted by its time limit (§II-A)."""
        return self.qmetrics.cancel_reason == "timeout"

    @property
    def cancelled(self) -> bool:
        """True when a cancellation was begun (timeout / budget / caller)."""
        return self.qmetrics.cancelled

    @property
    def cancel_reason(self) -> Optional[str]:
        """Why the cancellation was begun, if one was."""
        return self.qmetrics.cancel_reason

    @property
    def budget_exceeded(self) -> bool:
        """True when a resource budget tripped the cancellation."""
        return self.budget_error is not None

    @property
    def partial_result(self) -> bool:
        """True when a budget cancellation salvaged final-stage partials."""
        return self._salvaged

    @property
    def paused(self) -> bool:
        """True while evicted onto the checkpoint plane (docs/RECOVERY.md)."""
        return self.lifecycle.state is QueryState.PAUSED

    @property
    def failed(self) -> bool:
        """True when crash recovery exhausted the retry budget."""
        return (
            self.lifecycle.state is QueryState.FAILED
            and self.lifecycle.reason == REASON_RETRY_BUDGET
        )

    # -- execution state ---------------------------------------------------

    def context(self, pid: int) -> StepContext:
        """The query's StepContext on one partition (lazy)."""
        ctx = self._contexts[pid]
        if ctx is None:
            runtime = self.engine.runtimes[pid]
            store = runtime.store
            plane = getattr(self.engine, "txnplane", None)
            if plane is not None and self.snapshot_ts is not None:
                # Transaction plane armed: all kernels on every partition
                # read through the same pinned version cut.
                store = plane.store_for(pid, self.snapshot_ts)
            ctx = StepContext(
                store,
                runtime.memo_store.for_query(self.query_id),
                self.engine.graph.partitioner,
                self.params,
            )
            self._contexts[pid] = ctx
            trace = getattr(self.engine, "trace", None)
            if trace is not None:
                trace.emit(MEMO_ATTACH, self.query_id, pid=pid)
        return ctx

    @property
    def results(self) -> List[Any]:
        """The finished query's rows (raises if not finished)."""
        if self.cursor.results is None:
            raise ExecutionError(f"query {self.query_id} has not finished")
        return self.cursor.results


def salvage_partial(engine: "AsyncPSTMEngine", session: QuerySession) -> None:
    """Best-effort partial result for a budget-cancelled final stage.

    The final stage's barrier partials that already exist in partition
    memos are gathered synchronously (no messages — the query is being
    torn down, modelling its latency is pointless) and finalized into
    rows flagged ``partial``. Degraded-mode answer, exact subset.
    """
    query_id = session.query_id
    barrier = session.cursor.barrier()
    gathered: List[GatheredPartial] = []
    for pid, runtime in enumerate(engine.runtimes):
        memo = runtime.memo_store.peek(query_id)
        if memo is None:
            continue
        value = barrier.partial(memo)
        if value is None:
            continue
        gathered.append(
            GatheredPartial(pid, value, barrier.estimated_partial_size(value))
        )
    session.cursor.complete_stage(gathered, session.rng)
    if session.cursor.finished:
        session._salvaged = True
        session.qmetrics.completed_at_us = engine.clock.now
        session.qmetrics.result_rows = len(session.cursor.results or [])


def stage0_seeds(
    engine: "AsyncPSTMEngine", session: QuerySession
) -> List[Traverser]:
    """Build the root traversers for a query's stage 0.

    Broadcast sources seed one root per partition (encoded as a negative
    routing vertex); fixed-vertex sources seed the one start vertex. The
    root weight is split across all seeds so the stage ledger opens at
    exactly ``ROOT_WEIGHT`` (Theorem 1's invariant).
    """
    plan = session.plan
    specs: List[Traverser] = []
    for source in plan.source_ops():
        if source.broadcast:
            for pid in range(engine.num_partitions):
                specs.append(
                    make_root(
                        session.query_id, -pid - 1, source.idx,
                        plan.payload_width, 0,
                    )
                )
        else:
            assert isinstance(source, FixedVertexSource)
            vertex = source.start_vertex(session.params)
            specs.append(
                make_root(
                    session.query_id, vertex, source.idx, plan.payload_width, 0
                )
            )
    weights = split_weight(ROOT_WEIGHT, len(specs), session.rng)
    return [t.evolve(weight=w) for t, w in zip(specs, weights)]
