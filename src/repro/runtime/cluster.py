"""Cluster configurations shared by benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.graph.partition import PartitionedGraph
from repro.graph.property_graph import PropertyGraph
from repro.runtime.costmodel import MODERN, HardwareProfile, validate_cluster


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster."""

    nodes: int = 8
    workers_per_node: int = 16
    hardware: HardwareProfile = MODERN

    def __post_init__(self) -> None:
        validate_cluster(self.nodes, self.workers_per_node, self.hardware)

    @property
    def num_partitions(self) -> int:
        """Partitions for a fully partitioned (GraphDance) deployment."""
        return self.nodes * self.workers_per_node

    def with_nodes(self, nodes: int) -> "ClusterConfig":
        """A copy with a different node count."""
        return replace(self, nodes=nodes)

    def with_workers(self, workers_per_node: int) -> "ClusterConfig":
        """A copy with a different workers-per-node count."""
        return replace(self, workers_per_node=workers_per_node)

    def with_hardware(self, hardware: HardwareProfile) -> "ClusterConfig":
        """A copy with a different hardware profile."""
        return replace(self, hardware=hardware)

    def partition(self, graph: PropertyGraph) -> PartitionedGraph:
        """Partition a graph for this cluster's partitioned deployment."""
        return PartitionedGraph.from_graph(graph, self.num_partitions)

    def partition_per_node(self, graph: PropertyGraph) -> PartitionedGraph:
        """Partition a graph one-shard-per-node (non-partitioned baseline)."""
        return PartitionedGraph.from_graph(graph, self.nodes)


#: The paper's 8-node evaluation cluster (§V).
PAPER_CLUSTER = ClusterConfig(nodes=8, workers_per_node=16, hardware=MODERN)

#: A small cluster for quick tests and examples.
SMALL_CLUSTER = ClusterConfig(nodes=2, workers_per_node=4, hardware=MODERN)
