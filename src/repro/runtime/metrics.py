"""Run metrics: message/step/byte counters and latency recorders.

These counters feed the paper's microbenchmark figures directly:

* Fig 11 — progress-tracking messages vs other messages (``messages`` by
  :class:`MsgKind`);
* Fig 10/12 — latency under different progress-tracking / I/O-scheduler
  configurations (``QueryMetrics.latency_us``);
* Fig 7 — avg and P99 latency over a mixed workload
  (:class:`LatencyRecorder`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional


class MsgKind(Enum):
    """Wire message categories (for Fig 11's breakdown)."""

    TRAVERSER = "traverser"
    PROGRESS = "progress"
    PARTIAL = "partial"
    SEED = "seed"
    CONTROL = "control"

    @property
    def is_progress(self) -> bool:
        return self is MsgKind.PROGRESS


@dataclass
class RunMetrics:
    """Global counters for one engine instance."""

    steps_executed: int = 0
    traversers_spawned: int = 0
    edges_scanned: int = 0
    memo_ops: int = 0
    messages: Counter = field(default_factory=Counter)  # MsgKind -> count
    packets_sent: int = 0  # NIC-level packets (after node combining)
    bytes_sent: int = 0
    flushes: int = 0  # thread-level buffer flushes
    local_deliveries: int = 0  # same-node shared-memory deliveries
    supersteps: int = 0  # BSP only
    # Fault-injection / reliability-layer counters (all stay 0 when no
    # FaultPlan is configured; see docs/FAULTS.md).
    retransmits: int = 0  # packet retransmissions after ack timeout
    packets_dropped: int = 0  # transmissions lost to injected drops
    packets_duplicated: int = 0  # network-minted duplicate copies
    packets_delayed: int = 0  # transmissions given extra wire latency
    duplicates_suppressed: int = 0  # receiver-side seq-filtered arrivals
    acks_sent: int = 0  # reliability-layer acknowledgement frames
    worker_crashes: int = 0  # injected crashes (state lost)
    worker_stalls: int = 0  # injected stalls (state kept)
    query_retries: int = 0  # watchdog-triggered query re-executions
    # Checkpoint/restore counters (all stay 0 when checkpointing is
    # disarmed; see docs/RECOVERY.md).
    checkpoints_taken: int = 0  # stage-boundary snapshots stored
    checkpoint_restores: int = 0  # recoveries resumed from a checkpoint
    checkpoint_fallbacks: int = 0  # recoveries with no checkpoint: full retry
    # Voluntary-preemption counters (all stay 0 unless a preempt is
    # requested; see docs/RECOVERY.md and docs/OVERLOAD.md).
    preemptions: int = 0  # queries paused and evicted at a stage boundary
    resumes: int = 0  # paused queries re-admitted and resumed
    pause_wait_us: float = 0.0  # total simulated time queries spent paused
    # Live-migration counters (all stay 0 unless a Migrator flips the
    # placement; see docs/PARTITIONING.md).
    migrations: int = 0  # placement flips applied by the live migrator
    vertices_migrated: int = 0  # vertices relocated across all flips
    migration_bytes: int = 0  # modeled CSR-row + memo bytes shipped
    traversers_forwarded: int = 0  # stale-owner traversers re-routed post-flip
    # Overload-protection counters (all stay 0 without admission control,
    # budgets, or backpressure configured; see docs/OVERLOAD.md).
    queries_rejected: int = 0  # shed at submission (admission queue full)
    admission_timeouts: int = 0  # expired while waiting for admission
    queries_cancelled: int = 0  # cancellations begun (timeout/budget/caller)
    budget_cancels: int = 0  # cancellations tripped by a resource budget
    traversers_reclaimed: int = 0  # queued/buffered/in-flight traversers purged
    weight_reclaim_reports: int = 0  # reclaimed-weight reports to the tracker
    credit_stalls: int = 0  # sends deferred by an exhausted credit gate
    # Transaction-plane counters (all stay 0 unless EngineConfig.transactions
    # arms the plane; see docs/TRANSACTIONS.md).
    txn_commits: int = 0  # update transactions committed (LCT advanced)
    txn_aborts: int = 0  # aborts: lock conflicts + torn commits
    txn_replays: int = 0  # version-log recovery scans run after crashes
    snapshot_pins: int = 0  # queries pinned to a snapshot timestamp
    # Lifecycle audit trail: every validated state-machine edge taken by any
    # query, keyed "src->dst" (e.g. "running->done"). Soak tests assert the
    # key set stays inside the legal-transition table of
    # repro.runtime.lifecycle (illegal edges raise, so any key here is legal
    # by construction — the counter exists for post-hoc run audits).
    lifecycle_transitions: Counter = field(default_factory=Counter)  # str -> count
    # BSP only: per-superstep compute totals vs barrier-idle time. Idle is
    # Σ_s (P·max_p - Σ_p) compute — worker-time wasted waiting at barriers
    # because the superstep's frontier was imbalanced (the paper's
    # straggler/low-utilization critique of BSP).
    bsp_compute_us: float = 0.0
    bsp_idle_us: float = 0.0

    @property
    def bsp_idle_fraction(self) -> float:
        """Fraction of worker-time wasted at barriers (BSP engines only)."""
        total = self.bsp_compute_us + self.bsp_idle_us
        return self.bsp_idle_us / total if total > 0 else 0.0

    def message_count(self, kind: MsgKind) -> int:
        """Logical message count of one kind."""
        return self.messages.get(kind, 0)

    @property
    def progress_messages(self) -> int:
        return self.message_count(MsgKind.PROGRESS)

    @property
    def other_messages(self) -> int:
        return sum(v for k, v in self.messages.items() if k is not MsgKind.PROGRESS)

    def snapshot(self) -> Dict[str, int]:
        """All counters as a flat dict (for reports and trace exports).

        Derived from the dataclass fields rather than a hand-maintained
        key list, so a counter added to :class:`RunMetrics` can never be
        silently missing from reports — the metrics-completeness test
        asserts exactly this property. The two Counter-valued fields are
        flattened: ``messages`` to one ``messages_<kind>`` entry per
        :class:`MsgKind` and ``lifecycle_transitions`` to its total (the
        per-edge breakdown stays on the attribute for audits).
        """
        from dataclasses import fields

        out: Dict[str, int] = {}
        for f in fields(self):
            if f.name == "messages":
                for kind in MsgKind:
                    out[f"messages_{kind.value}"] = self.message_count(kind)
            elif f.name == "lifecycle_transitions":
                out[f.name] = sum(self.lifecycle_transitions.values())
            else:
                out[f.name] = getattr(self, f.name)
        return out


@dataclass
class QueryMetrics:
    """Per-query outcome."""

    query_id: int
    plan_name: str
    submitted_at_us: float
    completed_at_us: Optional[float] = None
    steps_executed: int = 0
    result_rows: int = 0
    #: traversers this query spawned (drives the traverser-count budget)
    traversers_spawned: int = 0
    # Fault-recovery accounting (all stay 0 without a FaultPlan).
    retries: int = 0  # watchdog-triggered re-executions of this query
    #: of those retries, how many resumed from a stage-boundary checkpoint
    #: instead of re-executing from stage 0 (docs/RECOVERY.md)
    restores: int = 0
    #: voluntary preemptions: times this query was paused and evicted at a
    #: stage boundary, then resumed from the forced snapshot — does NOT
    #: consume the retry budget (no work was lost; docs/RECOVERY.md)
    pauses: int = 0
    #: total simulated time this query spent evicted (paused → resumed)
    pause_wait_us: float = 0.0
    retransmits: int = 0  # packet retransmits carrying this query's traffic
    faults_injected: int = 0  # injected faults that hit this query's packets
    # Overload-protection accounting (see docs/OVERLOAD.md).
    cancelled: bool = False  # a cancellation was begun for this query
    cancel_reason: Optional[str] = None  # "timeout" / "budget:..." / "caller"
    traversers_reclaimed: int = 0  # this query's purged traversers
    peak_memo_bytes: int = 0  # largest observed cluster-wide memo footprint

    @property
    def latency_us(self) -> float:
        if self.completed_at_us is None:
            raise ValueError(f"query {self.query_id} has not completed")
        return self.completed_at_us - self.submitted_at_us

    @property
    def done(self) -> bool:
        return self.completed_at_us is not None

    @property
    def degraded(self) -> bool:
        """True when the result was produced by a crash-recovery retry.

        The rows are still exact — re-execution starts from invalidated
        memos (or, with checkpointing armed, from a certified
        stage-boundary snapshot) — but the latency includes the lost
        attempt(s) and the per-operator profile mixes the executions.
        """
        return self.retries > 0

    @property
    def resumed(self) -> bool:
        """True when at least one retry resumed from a checkpoint instead
        of re-executing the query from stage 0 (docs/RECOVERY.md)."""
        return self.restores > 0


class LatencyRecorder:
    """Collects latencies and reports avg / percentiles (Fig 7)."""

    def __init__(self) -> None:
        self._values: List[float] = []

    def record(self, latency_us: float) -> None:
        """Record one latency sample (µs)."""
        self._values.append(latency_us)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def average(self) -> float:
        """Mean of the recorded latencies."""
        if not self._values:
            raise ValueError("no latencies recorded")
        return sum(self._values) / len(self._values)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (rank = ⌈p/100 · N⌉), p in [0, 100]."""
        import math

        if not self._values:
            raise ValueError("no latencies recorded")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        ordered = sorted(self._values)
        if p == 0:
            return ordered[0]
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def p99(self) -> float:
        """The 99th-percentile latency (nearest rank)."""
        return self.percentile(99)
