"""Overload protection: admission control and credit-based backpressure.

The async engine (docs/OVERLOAD.md) protects itself from load the way it
protects itself from faults — with explicit, bounded mechanisms instead of
unbounded queues:

* :class:`AdmissionController` bounds *query-level* concurrency: at most
  ``max_concurrent_queries`` sessions execute; excess submissions wait in a
  bounded priority queue and are shed (``QueryRejectedError``) or expired
  (``AdmissionTimeoutError``) instead of silently growing engine state.
* :class:`CreditGate` bounds *traverser-level* queueing per partition: a
  remote sender must hold one credit per traverser it has in flight toward
  or parked in a partition's inbox, so a hot query cannot grow a slow
  partition's queue without bound — the sender's flush stalls until the
  receiver drains.

Both are pure bookkeeping over the shared
:class:`~repro.runtime.simclock.SimClock`; the engine and workers own the
actual queues and call in at submission, flush, dequeue, and teardown.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Tuple

from repro.runtime.lifecycle import QueryState
from repro.runtime.simclock import SimClock
from repro.runtime.trace import CREDIT_ACQUIRE, CREDIT_RELEASE, CREDIT_STALL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.engine import AsyncPSTMEngine
    from repro.runtime.lifecycle import QuerySession
    from repro.runtime.trace import TraceRecorder

#: memo-byte budgets are checked every Nth worker run per query: the memo
#: walk is O(records), so sampling keeps enforcement off the hot path while
#: still bounding the overshoot to a few runs' worth of growth.
MEMO_CHECK_INTERVAL = 16


def check_budgets_of(engine: "AsyncPSTMEngine", query_ids: set) -> None:
    """Budget sweep over the queries a worker run just touched.

    Budget enforcement is overload protection (docs/OVERLOAD.md): workers
    call in here after each drain, and a tripped budget funnels into the
    engine's cancellation path. The functions take the engine as an
    argument — this layer sits below the engine and may not import it.
    """
    for query_id in query_ids:
        session = engine.sessions.get(query_id)
        if session is not None and session.query_id == query_id:
            check_budgets(engine, session)


def check_budgets(engine: "AsyncPSTMEngine", session: "QuerySession") -> None:
    """Check one session against the armed resource budgets."""
    cfg = engine.config
    limit = cfg.max_traversers_per_query
    if limit is not None and session.qmetrics.traversers_spawned > limit:
        trip_budget(
            engine,
            session,
            "traversers",
            f"spawned {session.qmetrics.traversers_spawned} traversers "
            f"(budget {limit})",
        )
        return
    limit = cfg.max_memo_bytes_per_query
    if limit is None:
        return
    # O(records) walk — sample every MEMO_CHECK_INTERVAL-th run.
    session._memo_check_tick = (session._memo_check_tick + 1) % MEMO_CHECK_INTERVAL
    if session._memo_check_tick != 0:
        return
    total = sum(
        runtime.memo_store.bytes_of(session.query_id)
        for runtime in engine.runtimes
    )
    if total > session.qmetrics.peak_memo_bytes:
        session.qmetrics.peak_memo_bytes = total
    if total > limit:
        trip_budget(
            engine, session, "memo_bytes",
            f"memos hold ~{total} bytes (budget {limit})",
        )


def trip_budget(
    engine: "AsyncPSTMEngine", session: "QuerySession", budget: str, detail: str
) -> None:
    """A budget fired: record it and begin the cooperative cancellation."""
    session.budget_error = (budget, detail)
    engine.metrics.budget_cancels += 1
    engine._begin_cancel(session, f"budget:{budget}")


class AdmissionController:
    """Bounded concurrent-query admission with priorities and deadlines.

    States a submission moves through (docs/OVERLOAD.md):

    ``submitted → running`` when a slot is free;
    ``submitted → waiting`` when all slots are busy and the queue has room;
    ``submitted → rejected`` when the queue is full (fail fast);
    ``waiting → running`` when a running query retires (priority order);
    ``waiting → expired`` when the admission deadline passes first.

    Lower ``priority`` values are dispatched sooner; ties dispatch in
    submission order. Expired waiters are removed lazily — the heap entry
    stays until it surfaces, so expiry is O(1) and dispatch amortized
    O(log n).
    """

    def __init__(
        self, engine: "AsyncPSTMEngine", max_concurrent: int, queue_size: int
    ) -> None:
        self.engine = engine
        self.max_concurrent = max_concurrent
        self.queue_size = queue_size
        #: sessions currently holding an execution slot
        self.running = 0
        #: live entries in the wait queue (stale heap entries excluded)
        self.waiting = 0
        self.peak_waiting = 0
        self._heap: List[Tuple[int, int, "QuerySession"]] = []
        self._seq = 0

    @property
    def has_slot(self) -> bool:
        return self.running < self.max_concurrent

    @property
    def queue_full(self) -> bool:
        return self.waiting >= self.queue_size

    def acquire(self) -> None:
        """Take one execution slot for a session being started."""
        self.running += 1

    def enqueue(self, session: "QuerySession", priority: int) -> None:
        """Park a session in the wait queue (caller checked ``queue_full``)."""
        session.parked = True
        self._seq += 1
        heapq.heappush(self._heap, (priority, self._seq, session))
        self.waiting += 1
        if self.waiting > self.peak_waiting:
            self.peak_waiting = self.waiting

    def withdraw(self, session: "QuerySession") -> None:
        """Lazily remove a waiter (admission timeout). O(1): the heap entry
        stays and is skipped when it surfaces in :meth:`on_closed`."""
        if session.parked:
            session.parked = False
            self.waiting -= 1

    def on_closed(self) -> None:
        """A running query retired: free its slot and dispatch a waiter."""
        self.running -= 1
        while self._heap:
            _prio, _seq, session = heapq.heappop(self._heap)
            if not session.parked:
                continue  # expired while queued; entry is stale
            session.parked = False
            self.waiting -= 1
            self.engine._start_admitted(session)
            return

    def maybe_preempt(self) -> bool:
        """Voluntary-preemption policy (docs/RECOVERY.md).

        Called after a new waiter parks: when ``EngineConfig.preemption``
        is armed, no slot is free, and a resident query of strictly lower
        priority than the best parked waiter has crossed at least
        ``preemption_min_checkpoints`` stage boundaries, ask the
        lowest-priority such resident to pause — it yields at its next
        boundary, and the freed slot dispatches the waiter through the
        normal :meth:`on_closed` handoff. Returns True when a preempt
        request was issued.
        """
        engine = self.engine
        cfg = engine.config
        if not cfg.preemption or self.has_slot or engine.checkpoints is None:
            return False
        best = min(
            (prio for prio, _seq, s in self._heap if s.parked), default=None
        )
        if best is None:
            return False
        victim = None
        for session in engine.sessions.values():
            if session.lifecycle.state is not QueryState.RUNNING:
                continue  # already pausing/cancelling, or not resident
            if session.priority <= best:
                continue  # only preempt strictly lower-priority work
            count = engine.checkpoints.count(session.query_id)
            if count < cfg.preemption_min_checkpoints:
                continue  # not past its first checkpoint yet
            if victim is None or session.priority > victim.priority:
                victim = session
        if victim is None:
            return False
        return engine.preempt(victim, reason="policy")


class CreditGate:
    """Per-partition credit channel throttling remote traverser senders.

    A sender must acquire ``n`` credits before putting ``n`` traversers on
    the wire toward this partition; the receiving worker releases credits
    as it drains them from its inbox into the run queue (and the engine
    releases them for traversers it discards — cancelled queries, crashed
    inboxes — so a cancellation can never deadlock the channel). In-flight
    + inboxed traversers therefore never exceed ``capacity``, which is the
    bounded-inbox guarantee the soak harness asserts.

    Exhausted credits defer the send: the flush thunk queues FIFO and runs
    in its own clock event once enough credits return. Deferred sends model
    a NIC-queue stall, so they charge no additional worker CPU.
    """

    def __init__(
        self,
        pid: int,
        capacity: int,
        clock: SimClock,
        trace: "TraceRecorder | None" = None,
    ) -> None:
        self.pid = pid
        self.capacity = capacity
        self.clock = clock
        self.available = capacity
        self._waiters: Deque[Tuple[int, Callable[[float], None]]] = deque()
        #: sends that found the gate exhausted and had to wait
        self.stalls = 0
        self.peak_in_use = 0
        # credit events carry no query id (a batch can mix queries)
        self._trace = trace

    @property
    def in_use(self) -> int:
        """Credits held by in-flight or inboxed traversers."""
        return self.capacity - self.available

    @property
    def waiting_sends(self) -> int:
        return len(self._waiters)

    def submit(self, n: int, send: Callable[[float], None], when: float) -> None:
        """Send now if ``n`` credits are free (and no earlier send waits),
        else defer. ``send`` receives the actual transmission instant."""
        if not self._waiters and self.available >= n:
            self._take(n)
            send(when)
        else:
            self.stalls += 1
            if self._trace is not None:
                self._trace.emit(
                    CREDIT_STALL, -1, pid=self.pid, n=n,
                    waiting=len(self._waiters) + 1,
                )
            self._waiters.append((n, send))

    def release(self, n: int = 1) -> None:
        """Return credits (inbox drain / discard) and grant waiting sends.

        Granted sends run as their own clock events: release is called from
        worker runs and delivery handlers, which must not re-enter the
        network mid-event.
        """
        self.available += n
        if self._trace is not None:
            self._trace.emit(CREDIT_RELEASE, -1, pid=self.pid, n=n)
        if self.available > self.capacity:  # pragma: no cover - invariant
            raise AssertionError(
                f"credit gate {self.pid} over-released: "
                f"{self.available}/{self.capacity}"
            )
        while self._waiters and self.available >= self._waiters[0][0]:
            k, send = self._waiters.popleft()
            self._take(k)
            self.clock.schedule_at(
                self.clock.now, lambda s=send: s(self.clock.now)
            )

    def _take(self, n: int) -> None:
        self.available -= n
        if self._trace is not None:
            self._trace.emit(
                CREDIT_ACQUIRE, -1, pid=self.pid, n=n, free=self.available
            )
        used = self.capacity - self.available
        if used > self.peak_in_use:
            self.peak_in_use = used
