"""Execution runtimes: the reference interpreter and simulated engines."""

from repro.runtime.bsp import BSPEngine
from repro.runtime.cluster import PAPER_CLUSTER, SMALL_CLUSTER, ClusterConfig
from repro.runtime.costmodel import (
    DEFAULT_COST_MODEL,
    CostModel,
    HardwareProfile,
    MODERN,
)
from repro.runtime.delivery import DeliveryPlane, TrackerActor
from repro.runtime.engine import (
    AsyncPSTMEngine,
    EngineConfig,
    IO_SYNC,
    IO_TLC,
    IO_TLC_NLC,
    QueryProfile,
    QueryResult,
)
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    RecoveryManager,
    WorkerFault,
)
from repro.runtime.hybrid import HybridEngine, estimate_plan_work
from repro.runtime.kernels import BatchKernel, ExecutionKernel, ScalarKernel
from repro.runtime.lifecycle import (
    LEGAL_TRANSITIONS,
    QueryLifecycle,
    QuerySession,
    QueryState,
)
from repro.runtime.metrics import LatencyRecorder, MsgKind, QueryMetrics, RunMetrics
from repro.runtime.reference import LocalExecutor
from repro.runtime.simclock import SimClock
from repro.runtime.trace import (
    AuditReport,
    TraceEvent,
    TraceRecorder,
    WeightLedgerAuditor,
)
from repro.runtime.variants import (
    SingleNodeEngine,
    make_banyan,
    make_bsp,
    make_gaia,
    make_graphdance,
    make_graphscope,
    make_non_partitioned,
)

__all__ = [
    "AsyncPSTMEngine",
    "AuditReport",
    "BSPEngine",
    "BatchKernel",
    "ClusterConfig",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DeliveryPlane",
    "EngineConfig",
    "ExecutionKernel",
    "FaultInjector",
    "FaultPlan",
    "HardwareProfile",
    "HybridEngine",
    "IO_SYNC",
    "IO_TLC",
    "IO_TLC_NLC",
    "LEGAL_TRANSITIONS",
    "LatencyRecorder",
    "LocalExecutor",
    "MODERN",
    "MsgKind",
    "PAPER_CLUSTER",
    "QueryLifecycle",
    "QueryMetrics",
    "QueryProfile",
    "QueryResult",
    "QuerySession",
    "QueryState",
    "RecoveryManager",
    "RunMetrics",
    "ScalarKernel",
    "TrackerActor",
    "SMALL_CLUSTER",
    "SimClock",
    "SingleNodeEngine",
    "TraceEvent",
    "TraceRecorder",
    "WeightLedgerAuditor",
    "WorkerFault",
    "estimate_plan_work",
    "make_banyan",
    "make_bsp",
    "make_gaia",
    "make_graphdance",
    "make_graphscope",
    "make_non_partitioned",
]
