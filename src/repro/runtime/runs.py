"""Shared run-draining machinery for the batched execution kernels.

Both optimized kernels (:class:`~repro.runtime.kernels.BatchKernel` and
:class:`~repro.runtime.vector.VectorKernel`) drain the partition queue in
*homogeneous runs* — maximal contiguous spans of traversers sharing
``(query_id, op_idx)`` — and must replay the scalar kernel's observable
sequence exactly: the same float additions in the same order, the same RNG
draws, the same buffer-flush instants, the same progress reports.

:class:`RunDrain` owns everything the kernels share:

* the per-drain hoisted state (cost constants, routing tables, buffer
  mirrors, per-query session state refreshed when a run's query changes);
* :meth:`pop_run` — run partitioning against the drain budget, including
  the cancelled-query weight-reclaim path;
* :meth:`execute_batch` — the reference batched execution of one run
  (kernel call + weight split + routing + buffering + progress), moved
  verbatim from the original ``BatchKernel.drain`` loop. The vector kernel
  uses it as the exact fallback for run shapes it does not vectorize, which
  is what makes per-run fast-path dispatch safe: every path produces the
  same simulated trajectory.

``PROGRESS_MSG_BYTES`` lives here (the bottom of the kernel stack) and is
re-exported by :mod:`repro.runtime.kernels` for compatibility.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Set

from repro.core.progress import ProgressMode
from repro.core.traverser import Traverser
from repro.core.weight import GROUP_MODULUS
from repro.errors import ExecutionError
from repro.runtime.metrics import MsgKind
from repro.runtime.network import TRACKER_DST, Message
from repro.runtime.trace import EXEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.worker import Worker

__all__ = ["PROGRESS_MSG_BYTES", "RunDrain", "get_drain"]

#: wire size of a progress report (weight or delta + headers)
PROGRESS_MSG_BYTES = 16


def get_drain(
    worker: "Worker", t: float, touched: Optional[Set[int]]
) -> "RunDrain":
    """The worker's cached :class:`RunDrain`, reset for a new drain.

    Construction hoists ~40 engine/worker constants that never change for
    a given worker; reusing one instance per worker turns that into a
    short per-drain :meth:`RunDrain.reset`. Workers are single-threaded
    (the event loop is serial) so the cache is race-free.
    """
    d = getattr(worker, "_run_drain", None)
    if d is None:
        d = RunDrain(worker, t, touched)
        worker._run_drain = d
    else:
        d.reset(t, touched)
    return d


class RunDrain:
    """One drain invocation's state + the shared batched run execution."""

    __slots__ = (
        # drain-wide
        "worker", "t", "touched", "budgets_armed", "budget", "cpu",
        "engine", "runtime", "queue", "stage_counts", "dec_stage_count",
        "sessions", "delivery", "trace", "metrics",
        # cost constants
        "cpu_scale", "step_base_us", "edge_us", "memo_op_us", "prop_us",
        "serialize_us",
        # shared-state penalty (non-partitioned baseline)
        "shared", "locality", "per_access",
        # progress mode
        "naive", "coalesced",
        # topology
        "self_pid", "ppn", "tracker_node", "num_nodes", "modulus",
        # tier-1 buffer mirrors
        "track_inflight", "note_outbound", "trav_buffers", "buffer_bytes",
        "flush_threshold", "flush", "size_cache", "last_payload",
        "last_size", "local_bufs", "local_bytes",
        # fast-path gate (no shared-state penalty, coalesced progress,
        # tracing off)
        "slim_ok",
        # metric tallies
        "steps", "edges_scanned", "memo_ops_total", "spawned_total",
        # per-query hoists
        "cur_qid", "session", "machine", "ctx", "getrandbits", "ops",
        "num_ops", "route_info", "partitioner", "pcache_get",
        "num_partitions", "barrier_route", "op_steps", "op_spawned",
        "qmetrics",
        # current run
        "run_qid", "run_op_idx", "run_stage",
    )

    def __init__(
        self, worker: "Worker", t: float, touched: Optional[Set[int]]
    ) -> None:
        engine = worker.engine
        runtime = worker.runtime
        cm = engine.cost
        self.worker = worker
        self.engine = engine
        self.runtime = runtime
        self.queue = runtime.queue
        self.stage_counts = runtime.stage_counts
        self.dec_stage_count = runtime.dec_stage_count
        self.sessions = engine.sessions
        self.delivery = engine.delivery
        self.metrics = engine.metrics

        self.cpu_scale = cm.cpu_scale
        self.step_base_us = cm.step_base_us
        self.edge_us = cm.edge_us
        self.memo_op_us = cm.memo_op_us
        self.prop_us = cm.prop_us
        self.serialize_us = cm.serialize_us * cm.cpu_scale

        self.shared = len(runtime.workers) > 1
        self.locality = cm.shared_locality_factor if self.shared else 1.0

        mode = engine.config.progress_mode
        self.naive = mode is ProgressMode.NAIVE_CENTRAL
        self.coalesced = mode.coalesced
        self.self_pid = runtime.pid
        self.ppn = engine.partitions_per_node
        self.tracker_node = engine.tracker_node
        self.num_nodes = engine.nodes
        self.modulus = GROUP_MODULUS

        # Inlined _buffer_traverser state (hot path).
        self.trav_buffers = worker._trav_buffers
        self.buffer_bytes = worker._buffer_bytes
        self.flush_threshold = engine.flush_threshold_bytes
        self.flush = worker._flush
        # estimated_size_bytes() depends only on the payload tuple, and
        # every payload referenced during this drain stays reachable (run
        # list, queue, buffers), so ids are stable for the cache's
        # lifetime. The cache is cleared per drain — a freed payload's id
        # may be reused afterwards.
        self.size_cache = {}
        # Node-indexed mirrors of the per-destination traverser buffers:
        # a list index replaces three dict operations per remote child. The
        # byte counts are written back to the dict around every _flush /
        # _buffer_message call (their only other readers during this drain)
        # and once at drain end.
        self.local_bufs: List = [None] * self.num_nodes
        self.local_bytes = [0] * self.num_nodes

        self.reset(t, touched)

    def reset(self, t: float, touched: Optional[Set[int]]) -> None:
        """Prepare the cached instance for a new drain invocation."""
        engine = self.engine
        self.t = t
        self.touched = touched
        self.budgets_armed = touched is not None
        self.budget = engine.config.batch_size
        self.cpu = 0.0
        self.trace = trace = engine.trace
        delivery = engine.delivery
        self.track_inflight = delivery.track_inflight
        self.note_outbound = delivery.note_outbound
        if self.shared:
            # All workers' scheduled flags are frozen while this drain
            # executes (the event loop is serial), so the scalar loop's
            # per-traverser busy count is a per-drain constant.
            worker = self.worker
            busy = 1 + sum(
                1
                for w in self.runtime.workers
                if w is not worker and w.scheduled
            )
            cm = engine.cost
            self.per_access = (
                cm.latch_us + cm.latch_contention * max(busy - 1, 0)
            )
        else:
            self.per_access = 0.0
        # Sink runs (no children at all) take a slim pricing loop when no
        # per-traverser side channel (penalty, trace, eager progress) needs
        # the full body.
        self.slim_ok = (
            not self.shared
            and self.coalesced
            and not self.naive
            and trace is None
        )

        self.size_cache.clear()
        # Siblings share their parent's payload reference, so one identity
        # compare usually replaces the id()+dict lookup.
        self.last_payload = object()
        self.last_size = 0
        local_bufs = self.local_bufs
        local_bytes = self.local_bytes
        for nd in range(self.num_nodes):
            local_bufs[nd] = None
            local_bytes[nd] = 0

        self.steps = 0
        self.edges_scanned = 0
        self.memo_ops_total = 0
        self.spawned_total = 0

        # Per-query hoisted machine state; refreshed when a run's query
        # differs from the previous run's.
        self.cur_qid = None
        self.session = None

        self.run_qid = -1
        self.run_op_idx = -1
        self.run_stage = -1

    # -- buffer mirror maintenance ------------------------------------------

    def sync_bufs(self) -> None:
        """Write the local byte mirrors back to the worker's dict."""
        local_bufs = self.local_bufs
        buffer_bytes = self.buffer_bytes
        local_bytes = self.local_bytes
        for nd in range(self.num_nodes):
            if local_bufs[nd] is not None:
                buffer_bytes[nd] = local_bytes[nd]
                local_bufs[nd] = None

    # -- run partitioning ----------------------------------------------------

    def _refresh_session(self, query_id: int) -> None:
        self.cur_qid = query_id
        session = self.sessions.get(query_id)
        self.session = session
        if self.budgets_armed:
            self.touched.add(query_id)
        if session is not None:
            machine = session.machine
            self.machine = machine
            self.ctx = session.context(self.self_pid)
            self.getrandbits = session.rng.getrandbits
            self.ops = machine.plan.ops
            self.num_ops = len(machine.plan.ops)
            self.route_info = machine.route_info()
            partitioner = machine.partitioner
            self.partitioner = partitioner
            pcache = getattr(partitioner, "_cache", None)
            self.pcache_get = None if pcache is None else pcache.get
            self.num_partitions = partitioner.num_partitions
            self.barrier_route = machine.barrier_route
            self.op_steps = session.op_steps
            self.op_spawned = session.op_spawned
            self.qmetrics = session.qmetrics

    def pop_run(self) -> Optional[List[Traverser]]:
        """Pop the next homogeneous run within the drain budget.

        Returns None when the budget or the queue is exhausted. Cancelled
        queries' runs are reclaimed here and never returned. On return,
        ``run_qid`` / ``run_op_idx`` / ``run_stage`` identify the run and
        the per-query hoists (session, machine, routing) are fresh.
        """
        queue = self.queue
        popleft = queue.popleft
        budget = self.budget
        while budget > 0 and queue:
            head = popleft()
            budget -= 1
            query_id = head.query_id
            op_idx = head.op_idx
            run = [head]
            run_append = run.append
            while budget > 0 and queue:
                nxt = queue[0]
                if nxt.query_id != query_id or nxt.op_idx != op_idx:
                    break
                run_append(popleft())
                budget -= 1
            self.budget = budget
            stage = head.stage
            self.dec_stage_count((query_id, stage), len(run))
            if query_id != self.cur_qid:
                self._refresh_session(query_id)
            if self.session is None:
                # Query already finished/cancelled. A cancelling query's
                # dropped run carries progression weight that must be
                # reclaimed, or its stage ledger never closes.
                delivery = self.delivery
                if delivery.cancelling and query_id in delivery.cancelling:
                    dropped = 0
                    for trav in run:
                        dropped += trav.weight
                    delivery.reclaim(query_id, stage, dropped, len(run))
                continue
            self.run_qid = query_id
            self.run_op_idx = op_idx
            self.run_stage = stage
            return run
        return None

    # -- drain epilogue ------------------------------------------------------

    def finish(self) -> float:
        """Flush mirrors, commit metric tallies, return the CPU µs burned."""
        self.sync_bufs()
        metrics = self.metrics
        metrics.steps_executed += self.steps
        metrics.edges_scanned += self.edges_scanned
        metrics.memo_ops += self.memo_ops_total
        metrics.traversers_spawned += self.spawned_total
        return self.cpu

    # -- the reference batched run execution ---------------------------------

    def execute_batch(self, run: List[Traverser]) -> None:
        """Execute one homogeneous run through the batched reference path.

        This is the original ``BatchKernel.drain`` per-run body: one
        ``apply_batch`` call, then a fused loop over (traverser, children,
        cost) doing cost pricing, weight splitting, routing, local enqueue
        or tier-1 buffering, and progress accounting — in exactly the
        scalar kernel's order.
        """
        query_id = self.run_qid
        op_idx = self.run_op_idx
        stage = self.run_stage
        n_run = len(run)
        ops = self.ops
        op = ops[op_idx]
        outcome = op.apply_batch(self.ctx, run)
        spec_rows = outcome.children
        costs = outcome.costs
        self.steps += n_run
        self.qmetrics.steps_executed += n_run
        op_steps = self.op_steps
        op_steps[op_idx] = op_steps.get(op_idx, 0) + n_run
        if self.slim_ok and not any(spec_rows):
            # Pure sink run (every traverser finished, no children): skip
            # the routing/buffering machinery entirely.
            self._sink_run(run, costs)
            return

        # Localize hot state (the inner loop below runs per child).
        worker = self.worker
        t = self.t
        cpu = self.cpu
        trace = self.trace
        queue_append = self.queue.append
        stage_counts = self.stage_counts
        cpu_scale = self.cpu_scale
        step_base_us = self.step_base_us
        edge_us = self.edge_us
        memo_op_us = self.memo_op_us
        prop_us = self.prop_us
        serialize_us = self.serialize_us
        shared = self.shared
        locality = self.locality
        per_access = self.per_access
        naive = self.naive
        coalesced = self.coalesced
        self_pid = self.self_pid
        ppn = self.ppn
        tracker_node = self.tracker_node
        modulus = self.modulus
        track_inflight = self.track_inflight
        note_outbound = self.note_outbound
        trav_buffers = self.trav_buffers
        buffer_bytes = self.buffer_bytes
        flush_threshold = self.flush_threshold
        flush = self.flush
        size_cache = self.size_cache
        size_cache_get = size_cache.get
        last_payload = self.last_payload
        last_size = self.last_size
        local_bufs = self.local_bufs
        local_bytes = self.local_bytes
        sync_bufs = self.sync_bufs
        getrandbits = self.getrandbits
        num_ops = self.num_ops
        route_info = self.route_info
        partitioner = self.partitioner
        pcache_get = self.pcache_get
        num_partitions = self.num_partitions
        barrier_route = self.barrier_route

        run_cpu0 = cpu
        run_spawned = 0
        fin_total = 0
        fin_count = 0
        edges_scanned = 0
        memo_ops_total = 0
        prev_tuple = None
        prev_cost_us = 0.0
        prev_edges = 0
        prev_memo_ops = 0
        last_idx = -1
        c_stage = c_mode = child_op = c_key = None
        lkey = None
        lcount = 0
        for trav, specs, ct in zip(run, spec_rows, costs):
            # Non-Expand kernels share one cost tuple across the run
            # ([t] * n), so an identity hit replays the exact float
            # computed for the previous traverser.
            if ct is prev_tuple:
                cost_us = prev_cost_us
                edges = prev_edges
                memo_ops = prev_memo_ops
            else:
                base, edges, memo_ops, props = ct
                # Same expression shape/order as CostModel.op_cost_us —
                # float addition is not associative, so the term order is
                # part of the equivalence contract.
                cost_us = cpu_scale * (
                    base * step_base_us
                    + edges * edge_us
                    + memo_ops * memo_op_us
                    + props * prop_us
                )
                if shared:
                    cost_us = cost_us * locality
                    cost_us += (memo_ops + props + edges * 0.25) * per_access
                prev_tuple = ct
                prev_cost_us = cost_us
                prev_edges = edges
                prev_memo_ops = memo_ops
            cpu += cost_us
            edges_scanned += edges
            memo_ops_total += memo_ops
            if specs:
                nc = len(specs)
                run_spawned += nc
                if nc == 1:
                    # Single-child fast path (filter passes, dedup admits,
                    # loop continues): no RNG draw — the child inherits the
                    # parent weight — and no zip machinery. The block below
                    # is textually duplicated in the multi-child loop; keep
                    # the two in sync.
                    vertex, c_idx, payload, loops = specs[0]
                    weight = trav.weight % modulus
                    if c_idx != last_idx:
                        if c_idx < 0 or c_idx >= num_ops:
                            raise ExecutionError(
                                f"op {op.name} produced child with bad "
                                f"target index {c_idx}"
                            )
                        c_stage, c_mode, child_op = route_info[c_idx]
                        c_key = (query_id, c_stage)
                        last_idx = c_idx
                    child = Traverser(
                        query_id, vertex, c_idx, payload, weight,
                        c_stage, loops,
                    )
                    # Routing: same mode dispatch as execute_batch.
                    if c_mode == "vertex":
                        if pcache_get is None or (
                            pid := pcache_get(vertex)
                        ) is None:
                            pid = partitioner(vertex)
                    elif c_mode == "free":
                        if vertex >= 0:
                            if pcache_get is None or (
                                pid := pcache_get(vertex)
                            ) is None:
                                pid = partitioner(vertex)
                        else:
                            pid = min(-vertex - 1, num_partitions - 1)
                    elif c_mode == "fixed":
                        pid = barrier_route
                    else:
                        # Inlined resolve_partition.
                        routed = child_op.routing(partitioner, child)
                        if routed is not None:
                            pid = routed
                        elif vertex >= 0:
                            if pcache_get is None or (
                                pid := pcache_get(vertex)
                            ) is None:
                                pid = partitioner(vertex)
                        else:
                            pid = min(-vertex - 1, num_partitions - 1)
                    if pid == self_pid:
                        queue_append(child)
                        # Deferred stage-count increment: contiguous local
                        # children mostly share one stage key, so batch the
                        # dict update. Flushed at run end — before the next
                        # run's dec_stage_count (the only reader during
                        # this drain) can observe the map.
                        if c_key is lkey:
                            lcount += 1
                        else:
                            if lcount:
                                stage_counts[lkey] = (
                                    stage_counts.get(lkey, 0) + lcount
                                )
                            lkey = c_key
                            lcount = 1
                    else:
                        cpu += serialize_us
                        # Inlined _buffer_traverser (hot path).
                        if track_inflight:
                            note_outbound(query_id)
                        dst_node = pid // ppn
                        buf = local_bufs[dst_node]
                        if buf is None:
                            buf = trav_buffers.get(dst_node)
                            if buf is None:
                                buf = trav_buffers[dst_node] = []
                            local_bufs[dst_node] = buf
                            local_bytes[dst_node] = buffer_bytes.get(
                                dst_node, 0
                            )
                        if payload is last_payload:
                            size = last_size
                        else:
                            last_payload = payload
                            pk = id(payload)
                            size = size_cache_get(pk)
                            if size is None:
                                size = child.estimated_size_bytes()
                                size_cache[pk] = size
                            last_size = size
                        buf.append((pid, child, size))
                        nbytes = local_bytes[dst_node] + size
                        local_bytes[dst_node] = nbytes
                        if nbytes >= flush_threshold:
                            buffer_bytes[dst_node] = nbytes
                            local_bufs[dst_node] = None
                            cpu += flush(dst_node, t + cpu)
                else:
                    # Inlined split_weight: same RNG draw sequence as the
                    # scalar path (ops never consume the RNG, so drawing
                    # after apply_batch instead of per apply is invisible).
                    parts = [getrandbits(64) for _ in range(nc - 1)]
                    last = trav.weight % modulus
                    for p in parts:
                        last = (last - p) % modulus
                    parts.append(last)
                    for (vertex, c_idx, payload, loops), weight in zip(
                        specs, parts
                    ):
                        if c_idx != last_idx:
                            if c_idx < 0 or c_idx >= num_ops:
                                raise ExecutionError(
                                    f"op {op.name} produced child with "
                                    f"bad target index {c_idx}"
                                )
                            c_stage, c_mode, child_op = route_info[c_idx]
                            c_key = (query_id, c_stage)
                            last_idx = c_idx
                        child = Traverser(
                            query_id, vertex, c_idx, payload, weight,
                            c_stage, loops,
                        )
                        # Routing: same mode dispatch as execute_batch.
                        if c_mode == "vertex":
                            if pcache_get is None or (
                                pid := pcache_get(vertex)
                            ) is None:
                                pid = partitioner(vertex)
                        elif c_mode == "free":
                            if vertex >= 0:
                                if pcache_get is None or (
                                    pid := pcache_get(vertex)
                                ) is None:
                                    pid = partitioner(vertex)
                            else:
                                pid = min(-vertex - 1, num_partitions - 1)
                        elif c_mode == "fixed":
                            pid = barrier_route
                        else:
                            # Inlined resolve_partition.
                            routed = child_op.routing(partitioner, child)
                            if routed is not None:
                                pid = routed
                            elif vertex >= 0:
                                if pcache_get is None or (
                                    pid := pcache_get(vertex)
                                ) is None:
                                    pid = partitioner(vertex)
                            else:
                                pid = min(-vertex - 1, num_partitions - 1)
                        if pid == self_pid:
                            queue_append(child)
                            if c_key is lkey:
                                lcount += 1
                            else:
                                if lcount:
                                    stage_counts[lkey] = (
                                        stage_counts.get(lkey, 0) + lcount
                                    )
                                lkey = c_key
                                lcount = 1
                        else:
                            cpu += serialize_us
                            # Inlined _buffer_traverser (hot path).
                            if track_inflight:
                                note_outbound(query_id)
                            dst_node = pid // ppn
                            buf = local_bufs[dst_node]
                            if buf is None:
                                buf = trav_buffers.get(dst_node)
                                if buf is None:
                                    buf = trav_buffers[dst_node] = []
                                local_bufs[dst_node] = buf
                                local_bytes[dst_node] = buffer_bytes.get(
                                    dst_node, 0
                                )
                            if payload is last_payload:
                                size = last_size
                            else:
                                last_payload = payload
                                pk = id(payload)
                                size = size_cache_get(pk)
                                if size is None:
                                    size = child.estimated_size_bytes()
                                    size_cache[pk] = size
                                last_size = size
                            buf.append((pid, child, size))
                            nbytes = local_bytes[dst_node] + size
                            local_bytes[dst_node] = nbytes
                            if nbytes >= flush_threshold:
                                buffer_bytes[dst_node] = nbytes
                                local_bufs[dst_node] = None
                                cpu += flush(dst_node, t + cpu)
                if naive:
                    self.last_payload = last_payload
                    self.last_size = last_size
                    sync_bufs()
                    cpu += worker._buffer_message(
                        Message(
                            MsgKind.PROGRESS,
                            TRACKER_DST,
                            ("delta", query_id, stage, len(specs) - 1),
                            PROGRESS_MSG_BYTES,
                            query_id,
                        ),
                        tracker_node,
                        t + cpu,
                    )
            elif naive:
                self.last_payload = last_payload
                self.last_size = last_size
                sync_bufs()
                cpu += worker._buffer_message(
                    Message(
                        MsgKind.PROGRESS,
                        TRACKER_DST,
                        ("delta", query_id, stage, -1),
                        PROGRESS_MSG_BYTES,
                        query_id,
                    ),
                    tracker_node,
                    t + cpu,
                )
            else:
                weight = trav.weight
                if weight:
                    if coalesced:
                        # Deferred to one absorb_many below: addition in
                        # Z_{2^64} is associative and the accumulator is
                        # only observed at flush time (end of the run).
                        fin_total += weight
                        fin_count += 1
                    else:
                        if trace is not None:
                            # Observation only: fin_count stays 0, so the
                            # coalescing absorb below never fires —
                            # fin_total just feeds the EXEC event.
                            fin_total += weight
                        self.last_payload = last_payload
                        self.last_size = last_size
                        sync_bufs()
                        cpu += worker._buffer_message(
                            Message(
                                MsgKind.PROGRESS,
                                TRACKER_DST,
                                ("weight", query_id, stage, weight),
                                PROGRESS_MSG_BYTES,
                                query_id,
                            ),
                            tracker_node,
                            t + cpu,
                        )
        if lcount:
            stage_counts[lkey] = stage_counts.get(lkey, 0) + lcount
        if fin_count:
            worker._accum(query_id, stage).absorb_many(fin_total, fin_count)
        if trace is not None:
            # One EXEC event per fused run: per-traverser weights are not
            # materialized here (that is the point of batching), so the
            # event carries run totals; the auditor checks the
            # active-weight ledger, not per-traverser conservation. A
            # snapshot store also reports its served version high-water so
            # the auditor can reject a read past the query's pin.
            vh = getattr(self.ctx.store, "version_high", 0)
            trace.emit(
                EXEC, query_id, pid=self_pid, wid=worker.wid,
                stage=stage, op_idx=op_idx, n=n_run,
                spawned=run_spawned,
                w_in=sum(tr.weight for tr in run) % modulus,
                w_fin=fin_total % modulus,
                cpu=cpu - run_cpu0,
                **({"version_ts": vh} if vh else {}),
            )
        self.spawned_total += run_spawned
        if run_spawned:
            op_spawned = self.op_spawned
            op_spawned[op_idx] = op_spawned.get(op_idx, 0) + run_spawned
            self.qmetrics.traversers_spawned += run_spawned
        self.cpu = cpu
        self.edges_scanned += edges_scanned
        self.memo_ops_total += memo_ops_total
        self.last_payload = last_payload
        self.last_size = last_size

    def _sink_run(self, run: List[Traverser], costs) -> None:
        """Slim pricing loop for pure sink runs under the ``slim_ok``
        gate (single worker, coalesced progress, tracing off): no child
        was spawned anywhere in the run, so routing, buffering, and
        progress messaging are all dead code. Only cost pricing (the same
        identity cost-tuple cache replaying the same floats in the same
        order) and the coalesced finish accumulator remain — bit-for-bit
        identical to the full body for these runs.
        """
        cpu = self.cpu
        cpu_scale = self.cpu_scale
        step_base_us = self.step_base_us
        edge_us = self.edge_us
        memo_op_us = self.memo_op_us
        prop_us = self.prop_us
        edges_scanned = 0
        memo_ops_total = 0
        prev_tuple = None
        prev_cost_us = 0.0
        prev_edges = 0
        prev_memo_ops = 0
        fin_total = 0
        fin_count = 0
        for trav, ct in zip(run, costs):
            if ct is prev_tuple:
                cost_us = prev_cost_us
                edges = prev_edges
                memo_ops = prev_memo_ops
            else:
                base, edges, memo_ops, props = ct
                # Same expression shape/order as the full body (float
                # addition order is part of the equivalence contract).
                cost_us = cpu_scale * (
                    base * step_base_us
                    + edges * edge_us
                    + memo_ops * memo_op_us
                    + props * prop_us
                )
                prev_tuple = ct
                prev_cost_us = cost_us
                prev_edges = edges
                prev_memo_ops = memo_ops
            cpu += cost_us
            edges_scanned += edges
            memo_ops_total += memo_ops
            weight = trav.weight
            if weight:
                fin_total += weight
                fin_count += 1
        if fin_count:
            self.worker._accum(self.run_qid, self.run_stage).absorb_many(
                fin_total, fin_count
            )
        self.cpu = cpu
        self.edges_scanned += edges_scanned
        self.memo_ops_total += memo_ops_total
