"""Deterministic fault injection for the simulated cluster.

The async engine's weight invariant (``Σ active weights + finished weight
= 1``, paper Theorem 1) is exactly the bookkeeping needed to *detect* lost
work: a dropped traverser message silently subtracts its weight from the
ledger's eventual total, so the stage's :class:`~repro.core.weight.WeightLedger`
never reaches the root weight and the query visibly hangs instead of
silently returning partial results. This module supplies the faults *and*
the query-level recovery machinery that turns a hang back into a correct
answer: :class:`RecoveryManager` hosts the worker-fault firing, the
progress-fingerprint watchdog, and the bounded query retry. The packet-level
recovery (ack/retransmit) lives in :mod:`repro.runtime.network`. The failure
model is documented end to end in ``docs/FAULTS.md``.

Everything here is **deterministic**: all fault decisions are drawn from one
``random.Random(plan.seed)`` in simulated-event order, so a given
``(workload, cluster, FaultPlan)`` triple always injects the same faults at
the same simulated instants. Chaos runs are therefore exactly replayable —
a failing seed in CI reproduces locally bit for bit.

Fault taxonomy (see ``docs/FAULTS.md`` for the full model):

* **drop** — a NIC packet leaves the wire and never arrives;
* **duplicate** — the network delivers a second copy of a packet;
* **delay** — a packet takes an extra detour before arriving;
* **ack drop** — the receiver's acknowledgement is lost (forces a
  spurious retransmit, which duplicate suppression then absorbs);
* **worker crash** — a worker dies at a simulated instant, losing its run
  queue, tier-1 buffers, and coalescing accumulators (and, for the
  shared-nothing configuration, the partition's memos);
* **worker stall** — a worker freezes but loses no state (a long GC pause
  or scheduler hiccup); it resumes where it left off.

Faults only apply to *remote* NIC packets: same-node traffic rides shared
memory, which this failure model treats as reliable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.subquery import StageCursor
from repro.errors import ConfigurationError
from repro.runtime.lifecycle import REASON_RETRY_BUDGET, QueryState
from repro.runtime.trace import (
    MEMO_CLEAR,
    QUERY_CLOSE,
    RESTORE,
    STAGE_OPEN,
    WORKER_FAULT,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.checkpoint import StageCheckpoint
    from repro.runtime.engine import AsyncPSTMEngine
    from repro.runtime.lifecycle import QuerySession
    from repro.runtime.network import Message

#: Worker-fault kinds.
CRASH = "crash"
STALL = "stall"


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled worker failure.

    Args:
        wid: index of the worker (== partition id in the shared-nothing
            configuration) to fail.
        at_us: absolute simulated time of the failure.
        kind: :data:`CRASH` (state lost) or :data:`STALL` (state kept).
        down_us: how long the worker stays down; ``None`` means it never
            recovers (a permanent crash — the scenario that exhausts the
            engine's retry budget).
    """

    wid: int
    at_us: float
    kind: str = CRASH
    down_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, STALL):
            raise ConfigurationError(f"unknown worker fault kind {self.kind!r}")
        if self.at_us < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.at_us}")
        if self.down_us is not None and self.down_us <= 0:
            raise ConfigurationError(f"down_us must be > 0, got {self.down_us}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault schedule for one engine run.

    Passed via :attr:`repro.runtime.engine.EngineConfig.fault_plan`. With no
    plan configured the engine's fault machinery is entirely disarmed and
    the simulated output is bit-for-bit identical to an engine built before
    this subsystem existed (the equivalence suite asserts it).

    Rates are per-packet probabilities in ``[0, 1)`` evaluated independently
    at each NIC transmission; ``worker_faults`` are scheduled at absolute
    simulated times.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    #: extra one-way latency added to a delayed packet
    delay_us: float = 500.0
    #: probability an acknowledgement is lost
    ack_drop_rate: float = 0.0
    worker_faults: Tuple[WorkerFault, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "delay_rate", "ack_drop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {rate}")
        if self.delay_us < 0:
            raise ConfigurationError(f"delay_us must be >= 0, got {self.delay_us}")

    @property
    def injects_packet_faults(self) -> bool:
        """True when any network-level fault can actually fire."""
        return (
            self.drop_rate > 0
            or self.dup_rate > 0
            or self.delay_rate > 0
            or self.ack_drop_rate > 0
        )


@dataclass
class PacketFate:
    """The injector's verdict for one packet transmission."""

    drop: bool = False
    duplicate: bool = False
    delay_us: float = 0.0


class FaultInjector:
    """Runtime fault source: draws every decision from one seeded RNG.

    Decisions are drawn in a fixed order per packet (drop, duplicate,
    delay) so the sequence of faults depends only on the plan's seed and
    the deterministic simulated event order.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: aggregate injection counters, keyed by fault kind
        self.counts: Dict[str, int] = {
            "drops": 0,
            "duplicates": 0,
            "delays": 0,
            "ack_drops": 0,
            "crashes": 0,
            "stalls": 0,
        }

    def packet_fate(self) -> PacketFate:
        """Decide the fate of one NIC packet transmission."""
        plan = self.plan
        rng = self._rng
        fate = PacketFate()
        if plan.drop_rate > 0 and rng.random() < plan.drop_rate:
            fate.drop = True
            self.counts["drops"] += 1
        if plan.dup_rate > 0 and rng.random() < plan.dup_rate:
            fate.duplicate = True
            self.counts["duplicates"] += 1
        if plan.delay_rate > 0 and rng.random() < plan.delay_rate:
            fate.delay_us = plan.delay_us
            self.counts["delays"] += 1
        return fate

    def drop_ack(self) -> bool:
        """Decide whether one acknowledgement frame is lost."""
        if self.plan.ack_drop_rate > 0 and self._rng.random() < self.plan.ack_drop_rate:
            self.counts["ack_drops"] += 1
            return True
        return False

    def note_worker_fault(self, kind: str) -> None:
        """Record one injected worker crash/stall (scheduled by the engine)."""
        self.counts["crashes" if kind == CRASH else "stalls"] += 1

    @property
    def total_injected(self) -> int:
        """Total faults of all kinds injected so far."""
        return sum(self.counts.values())


class RecoveryManager:
    """Query-level fault recovery: worker faults, watchdog, bounded retry.

    Owns the three recovery mechanisms of docs/FAULTS.md that operate at
    query granularity (packet-level ack/retransmit lives in the network):

    * firing scheduled :class:`WorkerFault` entries — a crash loses worker
      state and force-retries every query holding state there;
    * the progress-fingerprint watchdog that declares a query stuck when
      its observable progress is unchanged for a full timeout window;
    * :meth:`recover_query` — tear the attempt down and re-execute under a
      fresh query id, bounded by ``EngineConfig.retry_budget``.

    Constructed unconditionally by the engine; with no fault plan armed the
    watchdog never schedules and nothing here runs, keeping the fault-free
    path bit-identical to the pre-fault engine.
    """

    def __init__(self, engine: "AsyncPSTMEngine") -> None:
        self.engine = engine

    # -- worker faults -------------------------------------------------------

    def inject_worker_fault(self, wf: WorkerFault) -> None:
        """Fire one scheduled worker crash/stall from the fault plan.

        A crash loses the worker's core-resident state (run queue, tier-1
        buffers, weight accumulators) and invalidates the partition's memos,
        so every query holding state there is immediately forced through
        :meth:`recover_query` — waiting for the watchdog would risk a query
        completing with corrupted memo state (e.g. a Dedup set silently
        reset). A stall just freezes the worker; its state and weights
        survive, so no recovery is needed.
        """
        engine = self.engine
        worker = engine.workers[wf.wid]
        now = engine.clock.now
        engine.faults.note_worker_fault(wf.kind)
        if engine.trace is not None:
            engine.trace.emit(WORKER_FAULT, -1, wid=wf.wid, fault=wf.kind,
                              down_us=wf.down_us)
        if wf.kind == CRASH:
            engine.metrics.worker_crashes += 1
            runtime = worker.runtime
            affected = set(runtime.memo_store.invalidate_all())
            affected.update(worker.resident_queries())
            worker.crash()
            plane = getattr(engine, "txnplane", None)
            if plane is not None:
                # Recovery composition (docs/TRANSACTIONS.md): replay the
                # version log synchronously, *before* the deferred
                # recover_if_current events below can restore any
                # traversal — a resumed query must never read a delta the
                # recovery scan has not certified back to the LCT.
                plane.replay_after_crash(wf.wid)
            for query_id in affected:
                session = engine.sessions.get(query_id)
                if session is not None and session.query_id == query_id:
                    # Defer so one crash handler never recurses into seed
                    # dispatch while still iterating engine state.
                    engine.clock.schedule_at(
                        now,
                        lambda s=session, q=query_id: self.recover_if_current(s, q),
                    )
                    continue
                cancelling = engine.delivery.cancelling.get(query_id)
                if cancelling is not None:
                    # The crash destroyed reclaimed-weight the cancelled
                    # stage's ledger was waiting on; it can never close now.
                    # Force the finalize — the teardown is idempotent and
                    # late arrivals resolve to a dead session.
                    engine.clock.schedule_at(
                        now, lambda s=cancelling: engine._finalize_cancel(s)
                    )
        else:
            engine.metrics.worker_stalls += 1
            worker.stall()
        if wf.down_us is not None:
            engine.clock.schedule_at(
                now + wf.down_us, lambda w=worker: w.recover(engine.clock.now)
            )

    def recover_if_current(self, session: "QuerySession", query_id: int) -> None:
        """Run recovery only if this attempt is still the live one."""
        engine = self.engine
        if engine.sessions.get(query_id) is session and session.query_id == query_id:
            self.recover_query(session)

    # -- fault attribution ---------------------------------------------------

    def note_retransmit(self, messages: List["Message"]) -> None:
        """Attribute one packet retransmission to its queries' metrics."""
        sessions = self.engine.sessions
        for query_id in {m.query_id for m in messages if m.query_id >= 0}:
            session = sessions.get(query_id)
            if session is not None:
                session.qmetrics.retransmits += 1

    def note_packet_fault(self, kind: str, messages: List["Message"]) -> None:
        """Attribute one injected packet fault to its queries' metrics."""
        sessions = self.engine.sessions
        for query_id in {m.query_id for m in messages if m.query_id >= 0}:
            session = sessions.get(query_id)
            if session is not None:
                session.qmetrics.faults_injected += 1

    # -- watchdog ------------------------------------------------------------

    def arm_watchdog(self, session: "QuerySession") -> None:
        """Schedule the next stuck-query check for one attempt.

        The watchdog is the loss detector of docs/FAULTS.md: if a query's
        progress fingerprint — current stage, the stage ledger's received
        weight sum, executed steps, gathered partials — is unchanged after
        a full timeout window, some progression weight has left the system
        (crashed worker, exhausted transport) and the stage ledger can
        never reach the root weight. Only armed when a fault plan exists.
        """
        engine = self.engine
        if engine.faults is None:
            return
        snapshot = self.progress_snapshot(session)
        engine.clock.schedule_at(
            engine.clock.now + engine.config.watchdog_timeout_us,
            lambda s=session, snap=snapshot: self.watchdog_check(s, snap),
        )

    def progress_snapshot(self, session: "QuerySession") -> Tuple:
        """Fingerprint of a query attempt's observable progress."""
        query_id = session.query_id
        stage = session.cursor.current if not session.cursor.finished else -1
        ledger = self.engine.progress.ledger(query_id, stage)
        return (
            query_id,
            stage,
            None if ledger is None else ledger.received,
            session.qmetrics.steps_executed,
            len(session.partials),
        )

    def watchdog_check(self, session: "QuerySession", snapshot: Tuple) -> None:
        """Compare fingerprints; recover the query if nothing moved."""
        engine = self.engine
        query_id = snapshot[0]
        if engine.sessions.get(query_id) is not session or session.query_id != query_id:
            return  # finished, aborted, or already retried under a new id
        fresh = self.progress_snapshot(session)
        if fresh != snapshot:
            engine.clock.schedule_at(
                engine.clock.now + engine.config.watchdog_timeout_us,
                lambda s=session, snap=fresh: self.watchdog_check(s, snap),
            )
            return
        self.recover_query(session)

    # -- bounded retry -------------------------------------------------------

    def recover_query(self, session: "QuerySession") -> None:
        """Re-execute a stuck query under a fresh query id (bounded).

        With checkpointing armed and a stage-boundary checkpoint stored,
        recovery resumes from it (:meth:`restore_query`) and replays only
        the work after the boundary. Otherwise the abandoned attempt is
        torn down completely — per-partition memos invalidated, queued
        traversers purged, progress state closed — and the query restarts
        from its stage-0 seeds. Either way the fresh attempt gets a
        **new query id**, so anything of the old attempt still in flight
        (buffered traversers, retransmitted packets, stale weight reports)
        resolves to a dead session on arrival and is discarded instead of
        contaminating the retry. Budget exhaustion moves the session's
        lifecycle to FAILED; :meth:`AsyncPSTMEngine.run` surfaces that as
        RetryBudgetExceededError.
        """
        engine = self.engine
        checkpoints = engine.checkpoints
        if checkpoints is not None:
            ckpt = checkpoints.latest(session.query_id)
            if ckpt is not None:
                self.restore_query(session, ckpt)
                return
            # Armed but nothing stored yet (crash before the first stage
            # boundary, or the interval gate skipped every boundary so
            # far): fall back to the full force-retry below.
            engine.metrics.checkpoint_fallbacks += 1
        old_query_id = session.query_id
        if engine.trace is not None:
            # "recover" drops the abandoned attempt's open stage ledgers
            # without the terminated/cancelled closing assertions: a crash
            # or exhausted transport legitimately lost weight mid-stage.
            engine.trace.emit(MEMO_CLEAR, old_query_id, pid=-1, site="recover")
            engine.trace.emit(QUERY_CLOSE, old_query_id, reason="recover")
        for runtime in engine.runtimes:
            runtime.memo_store.clear_query(old_query_id)
            # purge_partition (not raw purge_query): inboxed traversers of
            # the abandoned attempt hold sender credits that must flow back.
            engine.delivery.purge_partition(runtime, old_query_id)
        engine.delivery.inflight.pop(old_query_id, None)
        engine.progress.close_query(old_query_id)
        engine.sessions.pop(old_query_id, None)
        if session.qmetrics.retries >= engine.config.retry_budget:
            session.lifecycle.to(QueryState.FAILED, REASON_RETRY_BUDGET)
            engine._retire(session)
            return
        session.qmetrics.retries += 1
        engine.metrics.query_retries += 1
        new_query_id = engine._next_query_id
        engine._next_query_id += 1
        session.query_id = new_query_id
        session.cursor = StageCursor(session.plan, new_query_id)
        session.rng = random.Random((engine.seed << 20) ^ new_query_id)
        session._contexts = [None] * engine.num_partitions
        session.partials = []
        session.expected_partials = 0
        engine.sessions[new_query_id] = session
        engine.progress.open_stage(new_query_id, 0)
        if engine.trace is not None:
            engine.trace.emit(STAGE_OPEN, new_query_id, stage=0,
                              retry_of=old_query_id)
        engine._dispatch_seeds(session, engine._stage0_seeds(session), engine.clock.now)
        self.arm_watchdog(session)

    def restore_query(
        self, session: "QuerySession", ckpt: "StageCheckpoint"
    ) -> None:
        """Resume a stuck query from its newest stage-boundary checkpoint.

        The same fencing idiom as the force retry — the restored attempt
        runs under a **fresh query id** so the dead attempt's strays
        resolve to a dead session — but instead of restarting from the
        stage-0 seeds, every partition's memo shard is rolled back to the
        checkpointed boundary and the checkpointed frontier (whose weights
        sum to the root weight by construction) is re-dispatched. Only the
        work after the boundary is replayed; the rows are bit-for-bit
        identical to an uncrashed run because the checkpoint carries the
        session RNG state as of the boundary (docs/RECOVERY.md).

        While the dead attempt is being purged its id sits in
        ``delivery.fenced``, so the purge's weight reclaims take the no-op
        path instead of reporting to the progress tracker — the restored
        attempt replays that weight itself, and a report here would
        double-count it (and could spuriously close the dead stage's
        still-open ledger mid-restore).
        """
        engine = self.engine
        delivery = engine.delivery
        old_query_id = session.query_id
        delivery.fenced.add(old_query_id)
        if engine.trace is not None:
            # "restore" (like "recover") drops the dead attempt's open
            # stage ledgers in the auditor before the purges below, so the
            # fenced reclaims and accumulator drains audit as no-ops.
            engine.trace.emit(MEMO_CLEAR, old_query_id, pid=-1, site="restore")
            engine.trace.emit(QUERY_CLOSE, old_query_id, reason="restore")
        stage = ckpt.stage
        for runtime in engine.runtimes:
            runtime.memo_store.clear_query(old_query_id)
            w, n = delivery.purge_partition(runtime, old_query_id)
            delivery.reclaim(old_query_id, stage, w, n, session=session)
        for worker in engine.workers:
            w, n = worker.reclaim_query(old_query_id)
            delivery.reclaim(old_query_id, stage, w, n, session=session)
        delivery.inflight.pop(old_query_id, None)
        engine.progress.close_query(old_query_id)
        delivery.fenced.discard(old_query_id)
        engine.sessions.pop(old_query_id, None)
        if session.qmetrics.retries >= engine.config.retry_budget:
            engine.checkpoints.drop(old_query_id)
            session.lifecycle.to(QueryState.FAILED, REASON_RETRY_BUDGET)
            engine._retire(session)
            return
        session.qmetrics.retries += 1
        session.qmetrics.restores += 1
        engine.metrics.query_retries += 1
        engine.metrics.checkpoint_restores += 1
        new_query_id = engine._next_query_id
        engine._next_query_id += 1
        session.query_id = new_query_id
        cursor = StageCursor(session.plan, new_query_id)
        cursor.current = stage
        session.cursor = cursor
        # Exact resume point: getstate() was captured right after the
        # boundary's split_weight draws, so the replay's draws continue the
        # original sequence bit for bit.
        rng = random.Random(0)
        rng.setstate(ckpt.rng_state)
        session.rng = rng
        session._contexts = [None] * engine.num_partitions
        session.partials = []
        session.expected_partials = 0
        engine.sessions[new_query_id] = session
        engine.checkpoints.rekey(old_query_id, new_query_id)
        for pid, runtime in enumerate(engine.runtimes):
            memo = ckpt.build_memo(pid)
            if memo is not None:
                runtime.memo_store.install(new_query_id, memo)
        engine.progress.open_stage(new_query_id, stage)
        if engine.trace is not None:
            engine.trace.emit(RESTORE, new_query_id, stage=stage,
                              restored_from=old_query_id,
                              n_seeds=len(ckpt.seeds))
            engine.trace.emit(STAGE_OPEN, new_query_id, stage=stage,
                              retry_of=old_query_id)
        seeds = [t.evolve(query_id=new_query_id) for t in ckpt.seeds]
        engine._dispatch_seeds(session, seeds, engine.clock.now)
        self.arm_watchdog(session)
