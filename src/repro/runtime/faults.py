"""Deterministic fault injection for the simulated cluster.

The async engine's weight invariant (``Σ active weights + finished weight
= 1``, paper Theorem 1) is exactly the bookkeeping needed to *detect* lost
work: a dropped traverser message silently subtracts its weight from the
ledger's eventual total, so the stage's :class:`~repro.core.weight.WeightLedger`
never reaches the root weight and the query visibly hangs instead of
silently returning partial results. This module supplies the faults; the
recovery machinery that turns a hang back into a correct answer lives in
:mod:`repro.runtime.network` (ack/retransmit) and
:mod:`repro.runtime.engine` (watchdog + bounded query retry). The failure
model is documented end to end in ``docs/FAULTS.md``.

Everything here is **deterministic**: all fault decisions are drawn from one
``random.Random(plan.seed)`` in simulated-event order, so a given
``(workload, cluster, FaultPlan)`` triple always injects the same faults at
the same simulated instants. Chaos runs are therefore exactly replayable —
a failing seed in CI reproduces locally bit for bit.

Fault taxonomy (see ``docs/FAULTS.md`` for the full model):

* **drop** — a NIC packet leaves the wire and never arrives;
* **duplicate** — the network delivers a second copy of a packet;
* **delay** — a packet takes an extra detour before arriving;
* **ack drop** — the receiver's acknowledgement is lost (forces a
  spurious retransmit, which duplicate suppression then absorbs);
* **worker crash** — a worker dies at a simulated instant, losing its run
  queue, tier-1 buffers, and coalescing accumulators (and, for the
  shared-nothing configuration, the partition's memos);
* **worker stall** — a worker freezes but loses no state (a long GC pause
  or scheduler hiccup); it resumes where it left off.

Faults only apply to *remote* NIC packets: same-node traffic rides shared
memory, which this failure model treats as reliable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Worker-fault kinds.
CRASH = "crash"
STALL = "stall"


@dataclass(frozen=True)
class WorkerFault:
    """One scheduled worker failure.

    Args:
        wid: index of the worker (== partition id in the shared-nothing
            configuration) to fail.
        at_us: absolute simulated time of the failure.
        kind: :data:`CRASH` (state lost) or :data:`STALL` (state kept).
        down_us: how long the worker stays down; ``None`` means it never
            recovers (a permanent crash — the scenario that exhausts the
            engine's retry budget).
    """

    wid: int
    at_us: float
    kind: str = CRASH
    down_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, STALL):
            raise ConfigurationError(f"unknown worker fault kind {self.kind!r}")
        if self.at_us < 0:
            raise ConfigurationError(f"fault time must be >= 0, got {self.at_us}")
        if self.down_us is not None and self.down_us <= 0:
            raise ConfigurationError(f"down_us must be > 0, got {self.down_us}")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault schedule for one engine run.

    Passed via :attr:`repro.runtime.engine.EngineConfig.fault_plan`. With no
    plan configured the engine's fault machinery is entirely disarmed and
    the simulated output is bit-for-bit identical to an engine built before
    this subsystem existed (the equivalence suite asserts it).

    Rates are per-packet probabilities in ``[0, 1)`` evaluated independently
    at each NIC transmission; ``worker_faults`` are scheduled at absolute
    simulated times.
    """

    seed: int = 0
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    #: extra one-way latency added to a delayed packet
    delay_us: float = 500.0
    #: probability an acknowledgement is lost
    ack_drop_rate: float = 0.0
    worker_faults: Tuple[WorkerFault, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "dup_rate", "delay_rate", "ack_drop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1), got {rate}")
        if self.delay_us < 0:
            raise ConfigurationError(f"delay_us must be >= 0, got {self.delay_us}")

    @property
    def injects_packet_faults(self) -> bool:
        """True when any network-level fault can actually fire."""
        return (
            self.drop_rate > 0
            or self.dup_rate > 0
            or self.delay_rate > 0
            or self.ack_drop_rate > 0
        )


@dataclass
class PacketFate:
    """The injector's verdict for one packet transmission."""

    drop: bool = False
    duplicate: bool = False
    delay_us: float = 0.0


class FaultInjector:
    """Runtime fault source: draws every decision from one seeded RNG.

    Decisions are drawn in a fixed order per packet (drop, duplicate,
    delay) so the sequence of faults depends only on the plan's seed and
    the deterministic simulated event order.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: aggregate injection counters, keyed by fault kind
        self.counts: Dict[str, int] = {
            "drops": 0,
            "duplicates": 0,
            "delays": 0,
            "ack_drops": 0,
            "crashes": 0,
            "stalls": 0,
        }

    def packet_fate(self) -> PacketFate:
        """Decide the fate of one NIC packet transmission."""
        plan = self.plan
        rng = self._rng
        fate = PacketFate()
        if plan.drop_rate > 0 and rng.random() < plan.drop_rate:
            fate.drop = True
            self.counts["drops"] += 1
        if plan.dup_rate > 0 and rng.random() < plan.dup_rate:
            fate.duplicate = True
            self.counts["duplicates"] += 1
        if plan.delay_rate > 0 and rng.random() < plan.delay_rate:
            fate.delay_us = plan.delay_us
            self.counts["delays"] += 1
        return fate

    def drop_ack(self) -> bool:
        """Decide whether one acknowledgement frame is lost."""
        if self.plan.ack_drop_rate > 0 and self._rng.random() < self.plan.ack_drop_rate:
            self.counts["ack_drops"] += 1
            return True
        return False

    def note_worker_fault(self, kind: str) -> None:
        """Record one injected worker crash/stall (scheduled by the engine)."""
        self.counts["crashes" if kind == CRASH else "stalls"] += 1

    @property
    def total_injected(self) -> int:
        """Total faults of all kinds injected so far."""
        return sum(self.counts.values())
