"""LDBC Social Network Benchmark substrate: schema, generator, queries,
mixed-workload driver."""

from repro.ldbc.generator import (
    SNB_SF300_SIM,
    SNB_SF1000_SIM,
    SNB_TINY,
    SNBConfig,
    SNBDataset,
    generate_snb,
)
from repro.ldbc.queries import IC_QUERIES, IS_QUERIES, UP_QUERIES, QueryDef
from repro.ldbc.workload import (
    MixedWorkloadResult,
    WorkloadConfig,
    build_schedule,
    run_mixed_workload,
)

__all__ = [
    "IC_QUERIES",
    "IS_QUERIES",
    "MixedWorkloadResult",
    "QueryDef",
    "SNBConfig",
    "SNBDataset",
    "SNB_SF1000_SIM",
    "SNB_SF300_SIM",
    "SNB_TINY",
    "UP_QUERIES",
    "WorkloadConfig",
    "build_schedule",
    "generate_snb",
    "run_mixed_workload",
]
