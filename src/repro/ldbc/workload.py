"""The LDBC SNB mixed interactive workload driver (paper §V-A1, Fig 7).

The benchmark issues interactive complex (IC), interactive short (IS), and
update (UP) operations at predefined frequencies; the **time compression
ratio (TCR)** scales all inter-arrival times — a lower TCR means a higher
offered load. The paper runs TCR ∈ {3, 0.3, 0.03} and observes TigerGraph
failing to keep up at 0.03.

The driver builds one deterministic arrival schedule and replays it against
either engine type:

* async engines (GraphDance and its variants): open-loop ``submit_at``;
* the BSP engine: arrivals injected into the shared superstep loop.

Updates execute for real against the transactional delta store
(:mod:`repro.txn`) and charge their service time to the engine, adding
realistic background load.

A run is marked **failed** (DNF) when the number of in-flight queries
exceeds ``overload_cap`` — the system cannot keep up with the issue rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ExecutionError
from repro.ldbc.generator import SNBDataset
from repro.ldbc.queries.ic import IC_QUERIES
from repro.ldbc.queries.short import IS_QUERIES
from repro.ldbc.queries.updates import UP_QUERIES, UpdateContext
from repro.query.plan import PhysicalPlan
from repro.runtime.bsp import BSPEngine
from repro.runtime.engine import AsyncPSTMEngine
from repro.runtime.metrics import LatencyRecorder
from repro.txn.manager import TransactionManager


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one mixed-workload run.

    Rates are operations per simulated second at TCR = 1; the effective
    rate of every stream is ``rate / tcr``.
    """

    tcr: float = 3.0
    duration_s: float = 2.0
    ic_rate: float = 2.0       # per IC type
    is_rate: float = 12.0      # per IS type
    up_rate: float = 30.0      # total across update types
    seed: int = 11
    overload_cap: int = 512
    include_ic: Tuple[int, ...] = tuple(range(1, 15))
    include_is: Tuple[int, ...] = tuple(range(1, 8))


@dataclass
class Arrival:
    time_us: float
    label: str            # e.g. "IC4", "IS2", "UP3"
    plan: Optional[PhysicalPlan]      # None for updates
    params: Dict[str, Any]
    update_number: int = 0            # for updates


@dataclass
class MixedWorkloadResult:
    """Latency distributions per query type for one run."""

    engine_name: str
    tcr: float
    completed: bool
    per_type: Dict[str, LatencyRecorder] = field(default_factory=dict)
    failure_reason: str = ""

    def recorder(self, label: str) -> LatencyRecorder:
        """The latency recorder of one query label, created lazily."""
        rec = self.per_type.get(label)
        if rec is None:
            rec = LatencyRecorder()
            self.per_type[label] = rec
        return rec

    def avg_ms(self, label: str) -> float:
        """Average latency of a query label in milliseconds."""
        return self.recorder(label).average() / 1000.0

    def p99_ms(self, label: str) -> float:
        """P99 latency of a query label in milliseconds."""
        return self.recorder(label).p99() / 1000.0

    def labels(self) -> List[str]:
        """Recorded query labels in canonical order."""
        return sorted(self.per_type, key=_label_key)


def _label_key(label: str) -> Tuple[str, int]:
    kind = label.rstrip("0123456789")
    num = label[len(kind):]
    return (kind, int(num) if num else 0)


def build_schedule(
    dataset: SNBDataset,
    graph,
    config: WorkloadConfig,
) -> List[Arrival]:
    """Compile plans once and lay out a deterministic arrival schedule."""
    rng = random.Random(config.seed)
    duration_us = config.duration_s * 1e6
    arrivals: List[Arrival] = []

    def poisson_times(rate_per_s: float) -> List[float]:
        if rate_per_s <= 0:
            return []
        scaled = rate_per_s / config.tcr
        times = []
        t = rng.expovariate(scaled) * 1e6
        while t < duration_us:
            times.append(t)
            t += rng.expovariate(scaled) * 1e6
        return times

    ic_plans = {n: IC_QUERIES[n].build().compile(graph) for n in config.include_ic}
    is_plans = {n: IS_QUERIES[n].build().compile(graph) for n in config.include_is}

    for n in config.include_ic:
        qdef = IC_QUERIES[n]
        for t in poisson_times(config.ic_rate):
            arrivals.append(
                Arrival(t, qdef.name, ic_plans[n], qdef.make_params(dataset, rng))
            )
    for n in config.include_is:
        qdef = IS_QUERIES[n]
        for t in poisson_times(config.is_rate):
            arrivals.append(
                Arrival(t, qdef.name, is_plans[n], qdef.make_params(dataset, rng))
            )
    update_ctx = UpdateContext(dataset)
    up_types = sorted(UP_QUERIES)
    for t in poisson_times(config.up_rate):
        number = rng.choice(up_types)
        udef = UP_QUERIES[number]
        arrivals.append(
            Arrival(t, udef.name, None, udef.make_params(update_ctx, rng), number)
        )

    arrivals.sort(key=lambda a: a.time_us)
    return arrivals


def run_mixed_workload(
    engine: Union[AsyncPSTMEngine, BSPEngine],
    dataset: SNBDataset,
    config: WorkloadConfig,
    txn_manager: Optional[TransactionManager] = None,
) -> MixedWorkloadResult:
    """Replay the workload schedule against an engine."""
    graph = engine.graph
    schedule = build_schedule(dataset, graph, config)
    plane = getattr(engine, "txnplane", None)
    if txn_manager is not None:
        txm = txn_manager
    elif plane is not None:
        # Transaction plane armed: updates commit into the plane's
        # manager, so concurrently running IC reads (pinned at admission)
        # actually observe the snapshot-isolation contract.
        txm = plane.txm
    else:
        txm = TransactionManager(graph.num_partitions)
    if isinstance(engine, BSPEngine):
        return _run_bsp(engine, schedule, txm, config)
    return _run_async(engine, schedule, txm, config)


# -- async engines ------------------------------------------------------------


def _run_async(
    engine: AsyncPSTMEngine,
    schedule: List[Arrival],
    txm: TransactionManager,
    config: WorkloadConfig,
) -> MixedWorkloadResult:
    result = MixedWorkloadResult(engine.config.name, config.tcr, completed=True)
    overloaded: List[str] = []

    def submit(arrival: Arrival) -> None:
        if overloaded:
            return
        if len(engine.sessions) > config.overload_cap:
            overloaded.append(
                f"{len(engine.sessions)} queries in flight at "
                f"t={engine.clock.now / 1e3:.1f} ms"
            )
            return
        if arrival.plan is None:
            udef = UP_QUERIES[arrival.update_number]
            plane = getattr(engine, "txnplane", None)
            if plane is not None:
                # Through the plane: traces, metrics, abort accounting,
                # and wedge-deferral behind a torn commit all apply.
                plane.apply_update(
                    lambda m: udef.apply(m, arrival.params), label=udef.name
                )
            else:
                udef.apply(txm, arrival.params)
            # Charge the update's service time to the owning worker.
            wid = arrival.update_number % len(engine.workers)
            engine.workers[wid].add_setup_cost(engine.clock.now, udef.service_us)
            result.recorder("UP").record(udef.service_us)
            return
        engine.submit(
            arrival.plan,
            arrival.params,
            on_done=lambda s, label=arrival.label: result.recorder(label).record(
                s.qmetrics.latency_us
            ),
        )

    for arrival in schedule:
        engine.clock.schedule_at(arrival.time_us, lambda a=arrival: submit(a))
    engine.clock.run_until_idle()

    if overloaded:
        result.completed = False
        result.failure_reason = overloaded[0]
    return result


# -- BSP engine ---------------------------------------------------------------------


def _run_bsp(
    engine: BSPEngine,
    schedule: List[Arrival],
    txm: TransactionManager,
    config: WorkloadConfig,
) -> MixedWorkloadResult:
    """Open-loop replay against the BSP engine.

    Queries time-slice the cluster at superstep granularity (each superstep
    holds the global barrier exclusively), so queueing delay accumulates
    quickly as the offered load rises — the mechanism behind the paper's
    TigerGraph overload at TCR 0.03.
    """
    result = MixedWorkloadResult(engine.name, config.tcr, completed=True)
    pending = list(schedule)
    active: List = []

    while pending or active:
        if not active and pending:
            engine.time_us = max(engine.time_us, pending[0].time_us)
        # Inject all arrivals due by now.
        while pending and pending[0].time_us <= engine.time_us:
            arrival = pending.pop(0)
            if arrival.plan is None:
                udef = UP_QUERIES[arrival.update_number]
                udef.apply(txm, arrival.params)
                engine.time_us += udef.service_us / max(len(engine.graph.stores), 1)
                result.recorder("UP").record(udef.service_us)
                continue
            session = engine.submit(arrival.plan, arrival.params)
            session.qmetrics.submitted_at_us = arrival.time_us
            active.append((arrival.label, session))
            if len(active) > config.overload_cap:
                result.completed = False
                result.failure_reason = (
                    f"{len(active)} queries in flight at "
                    f"t={engine.time_us / 1e3:.1f} ms"
                )
                return result
        if not active:
            continue
        # Round-robin one exclusive superstep per active query.
        for label, session in list(active):
            engine.advance(session)
            if session.cursor.finished:
                active.remove((label, session))
                result.recorder(label).record(session.qmetrics.latency_us)
    return result
