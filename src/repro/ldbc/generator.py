"""Deterministic synthetic LDBC SNB dataset generator.

Generates a schema-faithful SNB social network at configurable scale. The
paper evaluates the official SF300 (0.97 B vertices, 6.7 B edges, 256 GB)
and SF1000 (2.9 B vertices, 20.7 B edges, 862 GB) datasets; those are far
outside a pure-Python simulation budget, so :data:`SNB_SF300_SIM` and
:data:`SNB_SF1000_SIM` are scale-reduced stand-ins that preserve

* the schema and the correlations the IC queries exploit (friends cluster
  by city, interests bias message tags, comment authors come from the post
  creator's friends),
* the ~1 : 3 size ratio between the two datasets, and
* power-law friend counts.

Every entity gets an ``id`` property equal to its global vertex id, matching
how the query plans look entities up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.graph.builder import GraphBuilder
from repro.graph.partition import PartitionedGraph
from repro.graph.property_graph import PropertyGraph
from repro.ldbc import schema as S

FIRST_NAMES = [
    "Jan", "Yang", "Chen", "Hans", "Jun", "Carlos", "Jose", "Ali", "Ken",
    "Otto", "Wei", "Rahul", "Ivan", "Abdul", "John", "Mohammad", "Lei",
    "Karl", "Anna", "Maria", "Lin", "Olga", "Emma", "Sofia", "Amy", "Li",
]
LAST_NAMES = [
    "Smith", "Zhang", "Wang", "Kumar", "Garcia", "Mueller", "Kim", "Sato",
    "Singh", "Lopez", "Ivanov", "Khan", "Silva", "Chen", "Ahmed", "Brown",
]
LANGUAGES = ["en", "zh", "es", "de", "fr", "ru", "ar", "pt"]
BROWSERS = ["Chrome", "Firefox", "Safari", "Edge", "Opera"]
TAG_NAMES = [f"tag_{i:03d}" for i in range(120)]
TAGCLASS_NAMES = [
    "Thing", "Person", "Organisation", "Place", "Work", "Event", "Artist",
    "Politician", "Athlete", "Scientist",
]
CONTINENT_NAMES = ["Asia", "Europe", "Africa", "NorthAmerica", "SouthAmerica", "Oceania"]


@dataclass(frozen=True)
class SNBConfig:
    """Scale knobs of the synthetic SNB generator."""

    name: str
    persons: int
    seed: int = 2025
    avg_friends: float = 14.0
    forums_per_person: float = 0.9
    posts_per_forum: float = 6.0
    comments_per_post: float = 1.8
    likes_per_person: float = 8.0
    countries: int = 24
    cities_per_country: int = 3
    universities: int = 30
    companies: int = 60


#: Stand-ins for the paper's SF300 / SF1000 datasets (≈ 1 : 3 size ratio,
#: matching SF300 : SF1000 ≈ 1 : 3.1 in vertices and edges).
SNB_SF300_SIM = SNBConfig(name="snb-sf300-sim", persons=600)
SNB_SF1000_SIM = SNBConfig(name="snb-sf1000-sim", persons=1800)
#: A tiny config for unit tests.
SNB_TINY = SNBConfig(name="snb-tiny", persons=120, seed=7)


@dataclass
class SNBDataset:
    """A generated SNB graph plus the id pools parameter generation needs."""

    config: SNBConfig
    graph: PropertyGraph
    persons: List[int] = field(default_factory=list)
    forums: List[int] = field(default_factory=list)
    posts: List[int] = field(default_factory=list)
    comments: List[int] = field(default_factory=list)
    tags: List[int] = field(default_factory=list)
    tagclasses: List[int] = field(default_factory=list)
    countries: List[int] = field(default_factory=list)
    cities: List[int] = field(default_factory=list)
    universities: List[int] = field(default_factory=list)
    companies: List[int] = field(default_factory=list)

    @property
    def messages(self) -> List[int]:
        return self.posts + self.comments

    def partitioned(self, num_partitions: int) -> PartitionedGraph:
        """Partition with the default SNB indexes built."""
        pg = PartitionedGraph.from_graph(self.graph, num_partitions)
        for label, key in S.DEFAULT_INDEXES:
            pg.create_index(label, key)
        return pg

    def random_person(self, rng: random.Random) -> int:
        """A uniformly random person id."""
        return rng.choice(self.persons)

    def random_tag_name(self, rng: random.Random) -> str:
        """A uniformly random tag name."""
        vid = rng.choice(self.tags)
        return self.graph.get_vertex_property(vid, S.NAME)

    def random_country_name(self, rng: random.Random) -> str:
        """A uniformly random country name."""
        vid = rng.choice(self.countries)
        return self.graph.get_vertex_property(vid, S.NAME)

    def random_tagclass_name(self, rng: random.Random) -> str:
        """A uniformly random tag-class name."""
        vid = rng.choice(self.tagclasses)
        return self.graph.get_vertex_property(vid, S.NAME)


def generate_snb(config: SNBConfig = SNB_SF300_SIM) -> SNBDataset:
    """Generate the synthetic SNB dataset for ``config`` (deterministic)."""
    rng = random.Random(config.seed)
    b = GraphBuilder(S.PERSON)
    next_id = [0]

    def new_vertex(label: str, **props) -> int:
        vid = next_id[0]
        next_id[0] += 1
        props.setdefault("id", vid)
        b.vertex(vid, label, **props)
        return vid

    # -- places ---------------------------------------------------------------
    continents = [new_vertex(S.CONTINENT, name=n) for n in CONTINENT_NAMES]
    countries = []
    cities = []
    for i in range(config.countries):
        country = new_vertex(S.COUNTRY, name=f"country_{i:02d}")
        countries.append(country)
        b.edge(country, continents[i % len(continents)], S.IS_PART_OF)
        for j in range(config.cities_per_country):
            city = new_vertex(S.CITY, name=f"city_{i:02d}_{j}")
            cities.append(city)
            b.edge(city, country, S.IS_PART_OF)

    # -- tags -----------------------------------------------------------------------
    tagclasses = [new_vertex(S.TAGCLASS, name=n) for n in TAGCLASS_NAMES]
    for i in range(1, len(tagclasses)):
        b.edge(tagclasses[i], tagclasses[0], S.IS_SUBCLASS_OF)
    tags = []
    for i, name in enumerate(TAG_NAMES):
        tag = new_vertex(S.TAG, name=name)
        tags.append(tag)
        b.edge(tag, tagclasses[i % len(tagclasses)], S.HAS_TYPE)

    # -- organisations ------------------------------------------------------------------
    universities = []
    for i in range(config.universities):
        uni = new_vertex(S.UNIVERSITY, name=f"university_{i:02d}")
        universities.append(uni)
        b.edge(uni, rng.choice(cities), S.IS_LOCATED_IN)
    companies = []
    for i in range(config.companies):
        com = new_vertex(S.COMPANY, name=f"company_{i:02d}")
        companies.append(com)
        b.edge(com, rng.choice(countries), S.IS_LOCATED_IN)

    # -- persons -----------------------------------------------------------------------------
    persons = []
    person_city: Dict[int, int] = {}
    person_interests: Dict[int, List[int]] = {}
    for _ in range(config.persons):
        city = rng.choice(cities)
        p = new_vertex(
            S.PERSON,
            firstName=rng.choice(FIRST_NAMES),
            lastName=rng.choice(LAST_NAMES),
            gender=rng.choice(["male", "female"]),
            birthday=rng.randrange(0, 366),
            creationDate=rng.randrange(0, S.MAX_DATE),
            locationIP=f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(256)}",
            browserUsed=rng.choice(BROWSERS),
        )
        persons.append(p)
        person_city[p] = city
        b.edge(p, city, S.IS_LOCATED_IN)
        interests = rng.sample(tags, rng.randint(3, 8))
        person_interests[p] = interests
        for tag in interests:
            b.edge(p, tag, S.HAS_INTEREST)
        if rng.random() < 0.7:
            b.edge(p, rng.choice(universities), S.STUDY_AT,
                   classYear=rng.randrange(1995, 2014))
        for company in rng.sample(companies, rng.choice([0, 1, 1, 2])):
            b.edge(p, company, S.WORK_AT, workFrom=rng.randrange(1995, 2014))

    # -- knows network (power-law-ish, city-homophilous, mutual) -----------------------------
    by_city: Dict[int, List[int]] = {}
    for p in persons:
        by_city.setdefault(person_city[p], []).append(p)
    known: Dict[int, set] = {p: set() for p in persons}
    # Zipf-flavoured friend budget.
    budgets = {}
    for rank, p in enumerate(persons):
        base = config.avg_friends * 0.55
        tail = config.avg_friends * 6.0 / (1 + rank % 97)
        budgets[p] = max(2, int(rng.gauss(base + tail, base / 2)))
    for p in persons:
        local = by_city.get(person_city[p], persons)
        while len(known[p]) < budgets[p]:
            pool = local if rng.random() < 0.5 and len(local) > 1 else persons
            q = rng.choice(pool)
            if q == p or q in known[p]:
                if len(known[p]) >= len(pool) - 1:
                    break
                continue
            date = rng.randrange(0, S.MAX_DATE)
            b.edge(p, q, S.KNOWS, creationDate=date)
            b.edge(q, p, S.KNOWS, creationDate=date)
            known[p].add(q)
            known[q].add(p)

    # -- forums, posts, comments, likes ---------------------------------------------------------
    forums = []
    posts = []
    comments = []
    num_forums = max(1, int(config.persons * config.forums_per_person))
    for i in range(num_forums):
        moderator = rng.choice(persons)
        forum = new_vertex(
            S.FORUM,
            title=f"forum_{i:04d}",
            creationDate=rng.randrange(0, S.MAX_DATE // 2),
        )
        forums.append(forum)
        b.edge(forum, moderator, S.HAS_MODERATOR)
        member_pool = [moderator] + list(known[moderator])
        members = set(member_pool)
        extra = rng.randint(3, 12)
        members.update(rng.choice(persons) for _ in range(extra))
        members = sorted(members)
        for member in members:
            b.edge(forum, member, S.HAS_MEMBER,
                   joinDate=rng.randrange(0, S.MAX_DATE))
        n_posts = max(1, int(rng.expovariate(1.0 / config.posts_per_forum)))
        for _ in range(n_posts):
            creator = rng.choice(members)
            post_tags = _biased_tags(rng, person_interests[creator], tags)
            post = new_vertex(
                S.POST,
                creationDate=rng.randrange(0, S.MAX_DATE),
                length=rng.randrange(20, 2000),
                language=rng.choice(LANGUAGES),
                content=f"post content {len(posts)}",
            )
            posts.append(post)
            b.edge(forum, post, S.CONTAINER_OF)
            b.edge(post, creator, S.HAS_CREATOR)
            b.edge(post, rng.choice(countries), S.IS_LOCATED_IN)
            for tag in post_tags:
                b.edge(post, tag, S.HAS_TAG)
            post_date = b.get_vertex_prop(post, S.CREATION_DATE)
            n_comments = rng.randrange(0, max(1, int(config.comments_per_post * 2)))
            parent = post
            for _ in range(n_comments):
                commenter_pool = list(known[creator]) or persons
                commenter = rng.choice(commenter_pool)
                comment = new_vertex(
                    S.COMMENT,
                    creationDate=min(S.MAX_DATE - 1,
                                     post_date + rng.randrange(1, 200)),
                    length=rng.randrange(5, 500),
                    content=f"comment content {len(comments)}",
                )
                comments.append(comment)
                b.edge(comment, parent, S.REPLY_OF)
                b.edge(comment, commenter, S.HAS_CREATOR)
                b.edge(comment, rng.choice(countries), S.IS_LOCATED_IN)
                for tag in _biased_tags(rng, person_interests[commenter], tags, 1):
                    b.edge(comment, tag, S.HAS_TAG)
                # Threads: half the comments reply to the previous comment.
                if rng.random() < 0.5:
                    parent = comment

    messages = posts + comments
    for p in persons:
        for _ in range(int(rng.expovariate(1.0 / config.likes_per_person))):
            b.edge(p, rng.choice(messages), S.LIKES,
                   creationDate=rng.randrange(0, S.MAX_DATE))

    dataset = SNBDataset(
        config=config,
        graph=b.build(),
        persons=persons,
        forums=forums,
        posts=posts,
        comments=comments,
        tags=tags,
        tagclasses=tagclasses,
        countries=countries,
        cities=cities,
        universities=universities,
        companies=companies,
    )
    return dataset


def _biased_tags(
    rng: random.Random,
    interests: List[int],
    all_tags: List[int],
    max_tags: int = 3,
) -> List[int]:
    """Pick 1..max_tags tags, biased toward the author's interests."""
    count = rng.randint(1, max_tags)
    picked = set()
    for _ in range(count):
        if interests and rng.random() < 0.6:
            picked.add(rng.choice(interests))
        else:
            picked.add(rng.choice(all_tags))
    return sorted(picked)
