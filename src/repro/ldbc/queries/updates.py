"""LDBC SNB interactive update operations (UP1–UP8).

Updates run as MV2PL transactions against the transactional edge-log delta
store (:mod:`repro.txn`) — the same separation real systems use (immutable
base + transactional delta). When the engine arms the transaction plane
(``EngineConfig(transactions=True)``, docs/TRANSACTIONS.md), read queries
execute against per-query snapshot views pinned at admission, so these
updates become visible to readers admitted after their LCT broadcast;
on an unarmed engine reads see only the immutable base. Either way the
updates exercise the write path (locking, versioning, LCT advancement)
and contribute load to the mixed workload (Fig 7).

Each update has an estimated service cost in microseconds used by the
workload simulator; the values reflect the "transactional queries" row of
Table I (µs-level point writes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.ldbc import schema as S
from repro.ldbc.generator import SNBDataset
from repro.txn.manager import TransactionManager

ApplyFn = Callable[[TransactionManager, Dict[str, Any]], None]
ParamGen = Callable[["UpdateContext", random.Random], Dict[str, Any]]


@dataclass
class UpdateContext:
    """Id allocation state shared by the update stream."""

    dataset: SNBDataset

    def __post_init__(self) -> None:
        self._next_id = self.dataset.graph.vertex_count + 1_000_000
        self._next_eid = self.dataset.graph.edge_count + 1_000_000

    def new_vertex_id(self) -> int:
        """Allocate a fresh vertex id above the base graph's range."""
        vid = self._next_id
        self._next_id += 1
        return vid

    def new_edge_id(self) -> int:
        """Allocate a fresh edge id above the base graph's range."""
        eid = self._next_eid
        self._next_eid += 1
        return eid


@dataclass(frozen=True)
class UpdateDef:
    """One update operation type."""

    number: int
    name: str
    description: str
    apply: ApplyFn
    make_params: ParamGen
    #: simulated service time charged to the engine (µs)
    service_us: float


def _apply_add_person(txm: TransactionManager, p: Dict[str, Any]) -> None:
    txn = txm.begin()
    txm.set_property(txn, p["vid"], S.FIRST_NAME, p["firstName"])
    txm.set_property(txn, p["vid"], S.CREATION_DATE, p["creationDate"])
    txm.add_edge(txn, p["vid"], p["city"], S.IS_LOCATED_IN, p["eid"])
    txm.commit(txn)


def _params_add_person(ctx: UpdateContext, rng: random.Random) -> Dict[str, Any]:
    return {
        "vid": ctx.new_vertex_id(),
        "eid": ctx.new_edge_id(),
        "firstName": "NewPerson",
        "creationDate": rng.randrange(0, S.MAX_DATE),
        "city": rng.choice(ctx.dataset.cities),
    }


def _apply_add_like(txm: TransactionManager, p: Dict[str, Any]) -> None:
    txn = txm.begin()
    txm.add_edge(
        txn, p["person"], p["message"], S.LIKES, p["eid"],
        properties={"creationDate": p["creationDate"]},
    )
    txm.commit(txn)


def _params_add_like(ctx: UpdateContext, rng: random.Random) -> Dict[str, Any]:
    return {
        "person": ctx.dataset.random_person(rng),
        "message": rng.choice(ctx.dataset.messages),
        "eid": ctx.new_edge_id(),
        "creationDate": rng.randrange(0, S.MAX_DATE),
    }


def _apply_add_comment(txm: TransactionManager, p: Dict[str, Any]) -> None:
    txn = txm.begin()
    txm.set_property(txn, p["vid"], S.CREATION_DATE, p["creationDate"])
    txm.add_edge(txn, p["vid"], p["parent"], S.REPLY_OF, p["eid1"])
    txm.add_edge(txn, p["vid"], p["creator"], S.HAS_CREATOR, p["eid2"])
    txm.commit(txn)


def _params_add_comment(ctx: UpdateContext, rng: random.Random) -> Dict[str, Any]:
    return {
        "vid": ctx.new_vertex_id(),
        "eid1": ctx.new_edge_id(),
        "eid2": ctx.new_edge_id(),
        "parent": rng.choice(ctx.dataset.messages),
        "creator": ctx.dataset.random_person(rng),
        "creationDate": rng.randrange(0, S.MAX_DATE),
    }


def _apply_add_post(txm: TransactionManager, p: Dict[str, Any]) -> None:
    txn = txm.begin()
    txm.set_property(txn, p["vid"], S.CREATION_DATE, p["creationDate"])
    txm.add_edge(txn, p["forum"], p["vid"], S.CONTAINER_OF, p["eid1"])
    txm.add_edge(txn, p["vid"], p["creator"], S.HAS_CREATOR, p["eid2"])
    txm.commit(txn)


def _params_add_post(ctx: UpdateContext, rng: random.Random) -> Dict[str, Any]:
    return {
        "vid": ctx.new_vertex_id(),
        "eid1": ctx.new_edge_id(),
        "eid2": ctx.new_edge_id(),
        "forum": rng.choice(ctx.dataset.forums),
        "creator": ctx.dataset.random_person(rng),
        "creationDate": rng.randrange(0, S.MAX_DATE),
    }


def _apply_add_forum(txm: TransactionManager, p: Dict[str, Any]) -> None:
    txn = txm.begin()
    txm.set_property(txn, p["vid"], S.TITLE, p["title"])
    txm.add_edge(txn, p["vid"], p["moderator"], S.HAS_MODERATOR, p["eid"])
    txm.commit(txn)


def _params_add_forum(ctx: UpdateContext, rng: random.Random) -> Dict[str, Any]:
    return {
        "vid": ctx.new_vertex_id(),
        "eid": ctx.new_edge_id(),
        "title": "new forum",
        "moderator": ctx.dataset.random_person(rng),
    }


def _apply_add_member(txm: TransactionManager, p: Dict[str, Any]) -> None:
    txn = txm.begin()
    txm.add_edge(
        txn, p["forum"], p["person"], S.HAS_MEMBER, p["eid"],
        properties={"joinDate": p["joinDate"]},
    )
    txm.commit(txn)


def _params_add_member(ctx: UpdateContext, rng: random.Random) -> Dict[str, Any]:
    return {
        "forum": rng.choice(ctx.dataset.forums),
        "person": ctx.dataset.random_person(rng),
        "eid": ctx.new_edge_id(),
        "joinDate": rng.randrange(0, S.MAX_DATE),
    }


def _apply_add_knows(txm: TransactionManager, p: Dict[str, Any]) -> None:
    txn = txm.begin()
    txm.add_edge(
        txn, p["p1"], p["p2"], S.KNOWS, p["eid1"],
        properties={"creationDate": p["creationDate"]},
    )
    txm.add_edge(
        txn, p["p2"], p["p1"], S.KNOWS, p["eid2"],
        properties={"creationDate": p["creationDate"]},
    )
    txm.commit(txn)


def _params_add_knows(ctx: UpdateContext, rng: random.Random) -> Dict[str, Any]:
    p1 = ctx.dataset.random_person(rng)
    p2 = ctx.dataset.random_person(rng)
    return {
        "p1": p1,
        "p2": p2,
        "eid1": ctx.new_edge_id(),
        "eid2": ctx.new_edge_id(),
        "creationDate": rng.randrange(0, S.MAX_DATE),
    }


def _apply_remove_like(txm: TransactionManager, p: Dict[str, Any]) -> None:
    # Insert-then-delete exercises the tombstone path deterministically.
    txn = txm.begin()
    txm.add_edge(
        txn, p["person"], p["message"], S.LIKES, p["eid"],
        properties={"creationDate": p["creationDate"]},
    )
    txm.commit(txn)
    txn2 = txm.begin()
    txm.delete_edge(txn2, p["person"], p["message"], S.LIKES, p["eid"])
    txm.commit(txn2)


UP_QUERIES: Dict[int, UpdateDef] = {
    1: UpdateDef(1, "UP1", "add person", _apply_add_person, _params_add_person, 18.0),
    2: UpdateDef(2, "UP2", "add like", _apply_add_like, _params_add_like, 6.0),
    3: UpdateDef(3, "UP3", "add comment", _apply_add_comment, _params_add_comment, 12.0),
    4: UpdateDef(4, "UP4", "add forum", _apply_add_forum, _params_add_forum, 10.0),
    5: UpdateDef(5, "UP5", "add forum member", _apply_add_member, _params_add_member, 6.0),
    6: UpdateDef(6, "UP6", "add post", _apply_add_post, _params_add_post, 12.0),
    7: UpdateDef(7, "UP7", "unlike (add+tombstone)", _apply_remove_like, _params_add_like, 8.0),
    8: UpdateDef(8, "UP8", "add knows", _apply_add_knows, _params_add_knows, 8.0),
}
