"""The 7 LDBC SNB Interactive Short (IS) read queries.

Short reads retrieve a vertex's properties or immediate neighborhood —
the "transactional queries" row of the paper's Table I: 1–3 compute
stages, < 0.01 % of the graph accessed.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from repro.ldbc import schema as S
from repro.ldbc.generator import SNBDataset
from repro.ldbc.queries.ic import QueryDef
from repro.query.exprs import X
from repro.query.traversal import Traversal


def _person_param(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    return {"person": dataset.random_person(rng)}


def _message_param(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    return {"message": rng.choice(dataset.messages)}


def build_is1() -> Traversal:
    """IS1: a person's profile."""
    return (
        Traversal("IS1")
        .v_param("person")
        .values("firstName", S.FIRST_NAME)
        .values("lastName", S.LAST_NAME)
        .values("birthday", S.BIRTHDAY)
        .values("browser", S.BROWSER_USED)
        .values("ip", S.LOCATION_IP)
        .select("firstName", "lastName", "birthday", "browser", "ip")
    )


def build_is2() -> Traversal:
    """IS2: a person's 10 most recent messages."""
    return (
        Traversal("IS2")
        .v_param("person")
        .in_(S.HAS_CREATOR)
        .values("date", S.CREATION_DATE)
        .as_("message")
        .select("message", "date")
        .order_by((X.binding("date"), "desc"), (X.binding("message"), "asc"),
                  unique=True)
        .limit(10)
    )


def build_is3() -> Traversal:
    """IS3: a person's friends with the friendship creation date."""
    return (
        Traversal("IS3")
        .v_param("person")
        .out(S.KNOWS, edge_prop=(S.CREATION_DATE, "since"))
        .dedup()
        .as_("friend")
        .values("firstName", S.FIRST_NAME)
        .select("friend", "firstName", "since")
        .order_by((X.binding("since"), "desc"), (X.binding("friend"), "asc"),
                  unique=True)
    )


def build_is4() -> Traversal:
    """IS4: a message's creation date and content."""
    return (
        Traversal("IS4")
        .v_param("message")
        .values("date", S.CREATION_DATE)
        .values("content", S.CONTENT)
        .select("date", "content")
    )


def build_is5() -> Traversal:
    """IS5: a message's creator."""
    return (
        Traversal("IS5")
        .v_param("message")
        .out(S.HAS_CREATOR)
        .as_("creator")
        .values("firstName", S.FIRST_NAME)
        .values("lastName", S.LAST_NAME)
        .select("creator", "firstName", "lastName")
    )


def build_is6() -> Traversal:
    """IS6: the forum containing a message, with its moderator.

    Comments climb their reply chain to the root post first (the chain is
    a memo-pruned expansion over ``replyOf``).
    """
    return (
        Traversal("IS6")
        .v_param("message")
        .khop(S.REPLY_OF, k=12, dist_binding="hops")
        .has_label(S.POST)
        .in_(S.CONTAINER_OF)
        .as_("forum")
        .values("title", S.TITLE)
        .out(S.HAS_MODERATOR)
        .as_("moderator")
        .select("forum", "title", "moderator")
    )


def build_is7() -> Traversal:
    """IS7: direct replies to a message, with their authors."""
    return (
        Traversal("IS7")
        .v_param("message")
        .in_(S.REPLY_OF)
        .as_("reply")
        .values("date", S.CREATION_DATE)
        .out(S.HAS_CREATOR)
        .as_("author")
        .values("authorName", S.FIRST_NAME)
        .select("reply", "date", "author", "authorName")
        .order_by((X.binding("date"), "desc"), (X.binding("reply"), "asc"),
                  unique=True)
    )


IS_QUERIES: Dict[int, QueryDef] = {
    1: QueryDef(1, "IS1", "person profile", build_is1, _person_param),
    2: QueryDef(2, "IS2", "person's recent messages", build_is2, _person_param),
    3: QueryDef(3, "IS3", "person's friends", build_is3, _person_param),
    4: QueryDef(4, "IS4", "message content", build_is4, _message_param),
    5: QueryDef(5, "IS5", "message creator", build_is5, _message_param),
    6: QueryDef(6, "IS6", "forum of message", build_is6, _message_param),
    7: QueryDef(7, "IS7", "replies to message", build_is7, _message_param),
}
