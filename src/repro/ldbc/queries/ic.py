"""The 14 LDBC SNB Interactive Complex (IC) read queries as PSTM traversals.

Each query is a :class:`QueryDef`: a traversal builder plus a parameter
generator drawing from the synthetic dataset. The traversals follow the
official query semantics (https://ldbcouncil.org/ldbc_snb_docs/) with the
simplifications noted per query — the operator mix (multi-hop expansion,
dedup-by-memo, joins, filters, grouping, top-k) matches the official
workload, which is what the performance evaluation exercises.

Query/operator highlights:

* IC1/IC9/IC11 — memo-pruned multi-hop friend expansion (k-hop, Fig 5);
* IC6/IC10/IC14 — bidirectional double-pipelined joins (Fig 3);
* IC3/IC4/IC5/IC12 — partitionable group-count aggregation;
* IC13 — shortest-path via the distance memo.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.ldbc import schema as S
from repro.ldbc.generator import SNBDataset
from repro.query.exprs import X
from repro.query.traversal import Traversal

ParamGen = Callable[[SNBDataset, random.Random], Dict[str, Any]]


@dataclass(frozen=True)
class QueryDef:
    """One benchmark query: builder + parameter generator."""

    number: int
    name: str
    description: str
    build: Callable[[], Traversal]
    make_params: ParamGen


def _person_param(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for person-anchored queries (IC7/IC8)."""
    return {"person": dataset.random_person(rng)}


# ---------------------------------------------------------------------------
# IC1 — transitive friends with a given first name (up to 3 hops)
# ---------------------------------------------------------------------------


def build_ic1() -> Traversal:
    # The official query orders by BFS distance first; a discovery distance
    # under async execution is schedule-dependent, so (as Fig 2's Dedup-
    # before-TopK plan does) we emit each friend once and order by the
    # deterministic (lastName, id) tail of the official sort key.
    """Build the IC1 traversal."""
    return (
        Traversal("IC1")
        .v_param("person")
        .khop(S.KNOWS, k=3, dist_binding="dist")
        .filter_(X.binding("dist").ge(1))
        .has_param(S.FIRST_NAME, "firstName")
        .values("lastName", S.LAST_NAME)
        .as_("friend")
        .select("friend", "lastName")
        .order_by(
            (X.binding("lastName"), "asc"),
            (X.binding("friend"), "asc"),
            unique=True,
        )
        .limit(20)
    )


def params_ic1(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC1."""
    return {
        "person": dataset.random_person(rng),
        "firstName": rng.choice(
            [dataset.graph.get_vertex_property(p, S.FIRST_NAME)
             for p in rng.sample(dataset.persons, 5)]
        ),
    }


# ---------------------------------------------------------------------------
# IC2 — recent messages by direct friends (date ≤ maxDate, top 20)
# ---------------------------------------------------------------------------


def build_ic2() -> Traversal:
    """Build the IC2 traversal."""
    return (
        Traversal("IC2")
        .v_param("person")
        .out(S.KNOWS)
        .dedup()
        .as_("friend")
        .in_(S.HAS_CREATOR)
        .filter_(X.prop(S.CREATION_DATE).le(X.param("maxDate")))
        .values("date", S.CREATION_DATE)
        .as_("message")
        .select("friend", "message", "date")
        .order_by((X.binding("date"), "desc"), (X.binding("message"), "asc"),
                  unique=True)
        .limit(20)
    )


def params_ic2(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC2."""
    return {
        "person": dataset.random_person(rng),
        "maxDate": rng.randrange(S.MAX_DATE // 2, S.MAX_DATE),
    }


# ---------------------------------------------------------------------------
# IC3 — friends (1–2 hops) posting from a given country in a date window
# (simplified from the official two-country variant to one country; the
# operator mix — 2-hop expansion, location filter, per-friend counting —
# is unchanged)
# ---------------------------------------------------------------------------


def build_ic3() -> Traversal:
    """Build the IC3 traversal."""
    return (
        Traversal("IC3")
        .v_param("person")
        .khop(S.KNOWS, k=2, dist_binding="dist")
        .filter_(X.binding("dist").ge(1))
        .as_("friend")
        .in_(S.HAS_CREATOR)
        .filter_(
            X.prop(S.CREATION_DATE).ge(X.param("minDate")).and_(
                X.prop(S.CREATION_DATE).lt(X.param("maxDate"))
            )
        )
        .as_("message")
        .out(S.IS_LOCATED_IN)
        .has_param(S.NAME, "countryName")
        .group_count("friend", limit=20)
    )


def params_ic3(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC3."""
    lo = rng.randrange(0, S.MAX_DATE // 2)
    return {
        "person": dataset.random_person(rng),
        "countryName": dataset.random_country_name(rng),
        "minDate": lo,
        "maxDate": lo + S.MAX_DATE // 3,
    }


# ---------------------------------------------------------------------------
# IC4 — new topics: tags on friends' posts in a date window, top 10 by count
# (simplified: drops the "tag unseen before the window" anti-join)
# ---------------------------------------------------------------------------


def build_ic4() -> Traversal:
    """Build the IC4 traversal."""
    return (
        Traversal("IC4")
        .v_param("person")
        .out(S.KNOWS)
        .dedup()
        .in_(S.HAS_CREATOR)
        .has_label(S.POST)
        .filter_(
            X.prop(S.CREATION_DATE).ge(X.param("minDate")).and_(
                X.prop(S.CREATION_DATE).lt(X.param("maxDate"))
            )
        )
        .out(S.HAS_TAG)
        .values("tagName", S.NAME)
        .group_count("tagName", limit=10)
    )


def params_ic4(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC4."""
    lo = rng.randrange(0, S.MAX_DATE // 2)
    return {
        "person": dataset.random_person(rng),
        "minDate": lo,
        "maxDate": lo + S.MAX_DATE // 4,
    }


# ---------------------------------------------------------------------------
# IC5 — new groups: forums that friends (1–2 hops) joined after minDate,
# counted by joining friends (simplified: counts memberships per forum
# rather than posts by the joining member)
# ---------------------------------------------------------------------------


def build_ic5() -> Traversal:
    """Build the IC5 traversal."""
    return (
        Traversal("IC5")
        .v_param("person")
        .khop(S.KNOWS, k=2, dist_binding="dist")
        .filter_(X.binding("dist").ge(1))
        .as_("friend")
        .in_(S.HAS_MEMBER, edge_prop=(S.JOIN_DATE, "joinDate"))
        .filter_(X.binding("joinDate").gt(X.param("minDate")))
        .as_("forum")
        .group_count("forum", limit=20)
    )


def params_ic5(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC5."""
    return {
        "person": dataset.random_person(rng),
        "minDate": rng.randrange(S.MAX_DATE // 4, 3 * S.MAX_DATE // 4),
    }


# ---------------------------------------------------------------------------
# IC6 — co-occurring tags: posts by friends (1–2 hops) tagged $tagName; count
# the posts' other tags. Executed as the paper's Fig 3 bidirectional join:
# PathA finds the friends, PathB walks tag → posts → creators, and the two
# meet at the creator via the double-pipelined join.
# ---------------------------------------------------------------------------


def build_ic6() -> Traversal:
    """Build the IC6 traversal."""
    path_a = (
        Traversal("IC6.pathA")
        .v_param("person")
        .khop(S.KNOWS, k=2, dist_binding="dist")
        .filter_(X.binding("dist").ge(1))
        .as_("friend")
    )
    path_b = (
        Traversal("IC6.pathB")
        .index_lookup(S.TAG, S.NAME, "tagName")
        .in_(S.HAS_TAG)
        .has_label(S.POST)
        .as_("post")
        .out(S.HAS_CREATOR)
        .as_("creator")
    )
    return (
        Traversal.join("IC6", path_a, "friend", path_b, "creator")
        .goto("post")
        .out(S.HAS_TAG)
        .values("otherTag", S.NAME)
        .filter_(X.binding("otherTag").neq(X.param("tagName")))
        .group_count("otherTag", limit=10)
    )


def params_ic6(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC6."""
    return {
        "person": dataset.random_person(rng),
        "tagName": dataset.random_tag_name(rng),
    }


# ---------------------------------------------------------------------------
# IC7 — recent likers of the person's messages (top 20 by like date)
# ---------------------------------------------------------------------------


def build_ic7() -> Traversal:
    """Build the IC7 traversal."""
    return (
        Traversal("IC7")
        .v_param("person")
        .in_(S.HAS_CREATOR)
        .as_("message")
        .in_(S.LIKES, edge_prop=(S.CREATION_DATE, "likeDate"))
        .as_("liker")
        .values("likerName", S.FIRST_NAME)
        .select("liker", "likerName", "message", "likeDate")
        .order_by((X.binding("likeDate"), "desc"), (X.binding("liker"), "asc"))
        .limit(20)
    )


params_ic7 = _person_param


# ---------------------------------------------------------------------------
# IC8 — recent replies to the person's messages (top 20 by reply date)
# ---------------------------------------------------------------------------


def build_ic8() -> Traversal:
    """Build the IC8 traversal."""
    return (
        Traversal("IC8")
        .v_param("person")
        .in_(S.HAS_CREATOR)
        .in_(S.REPLY_OF)
        .as_("reply")
        .values("date", S.CREATION_DATE)
        .out(S.HAS_CREATOR)
        .as_("author")
        .select("author", "reply", "date")
        .order_by((X.binding("date"), "desc"), (X.binding("reply"), "asc"),
                  unique=True)
        .limit(20)
    )


params_ic8 = _person_param


# ---------------------------------------------------------------------------
# IC9 — recent messages by friends within 2 hops before maxDate (top 20)
# ---------------------------------------------------------------------------


def build_ic9() -> Traversal:
    """Build the IC9 traversal."""
    return (
        Traversal("IC9")
        .v_param("person")
        .khop(S.KNOWS, k=2, dist_binding="dist")
        .filter_(X.binding("dist").ge(1))
        .as_("friend")
        .in_(S.HAS_CREATOR)
        .filter_(X.prop(S.CREATION_DATE).lt(X.param("maxDate")))
        .values("date", S.CREATION_DATE)
        .as_("message")
        .select("friend", "message", "date")
        .order_by((X.binding("date"), "desc"), (X.binding("message"), "asc"),
                  unique=True)
        .limit(20)
    )


def params_ic9(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC9."""
    return {
        "person": dataset.random_person(rng),
        "maxDate": rng.randrange(S.MAX_DATE // 2, S.MAX_DATE),
    }


# ---------------------------------------------------------------------------
# IC10 — friend recommendation: strict 2-hop friends with a birthday in the
# window, scored by shared interest tags. The interest overlap is computed
# with a bidirectional join on the tag (person's interests ⋈ foaf's
# interests), then counted per candidate.
# ---------------------------------------------------------------------------


def build_ic10() -> Traversal:
    """Build the IC10 traversal."""
    my_tags = (
        Traversal("IC10.mine")
        .v_param("person")
        .out(S.HAS_INTEREST)
        .as_("myTag")
    )
    # Official IC10 restricts to *strict* 2-hop friends; exact-distance
    # classification is schedule-dependent under async discovery, so we use
    # the deduplicated 2-hop reachable set minus the person (documented
    # simplification; the expansion/filter/join/count mix is unchanged).
    foaf_tags = (
        Traversal("IC10.foaf")
        .v_param("person")
        .out(S.KNOWS)
        .out(S.KNOWS)
        .dedup()
        .filter_(X.vertex().neq(X.param("person")))
        .filter_(
            X.prop(S.BIRTHDAY).ge(X.param("birthdayLo")).and_(
                X.prop(S.BIRTHDAY).lt(X.param("birthdayHi"))
            )
        )
        .as_("foaf")
        .out(S.HAS_INTEREST)
        .as_("foafTag")
    )
    return (
        Traversal.join("IC10", my_tags, "myTag", foaf_tags, "foafTag")
        .group_count("foaf", limit=10)
    )


def params_ic10(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC10."""
    lo = rng.randrange(0, 330)
    return {
        "person": dataset.random_person(rng),
        "birthdayLo": lo,
        "birthdayHi": lo + 60,
    }


# ---------------------------------------------------------------------------
# IC11 — job referral: friends (1–2 hops) working at companies in $country
# since before $year (top 10 by start year, then friend id)
# ---------------------------------------------------------------------------


def build_ic11() -> Traversal:
    """Build the IC11 traversal."""
    return (
        Traversal("IC11")
        .v_param("person")
        .khop(S.KNOWS, k=2, dist_binding="dist")
        .filter_(X.binding("dist").ge(1))
        .as_("friend")
        .out(S.WORK_AT, edge_prop=(S.WORK_FROM, "workFrom"))
        .filter_(X.binding("workFrom").lt(X.param("year")))
        .as_("company")
        .out(S.IS_LOCATED_IN)
        .has_param(S.NAME, "countryName")
        .select("friend", "company", "workFrom")
        .order_by((X.binding("workFrom"), "asc"), (X.binding("friend"), "asc"))
        .limit(10)
    )


def params_ic11(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC11."""
    return {
        "person": dataset.random_person(rng),
        "countryName": dataset.random_country_name(rng),
        "year": rng.randrange(2000, 2014),
    }


# ---------------------------------------------------------------------------
# IC12 — expert search: friends whose comments reply to posts tagged with a
# tag of class $tagClass, counted per friend (top 20)
# ---------------------------------------------------------------------------


def build_ic12() -> Traversal:
    """Build the IC12 traversal."""
    return (
        Traversal("IC12")
        .v_param("person")
        .out(S.KNOWS)
        .dedup()
        .as_("friend")
        .in_(S.HAS_CREATOR)
        .has_label(S.COMMENT)
        .out(S.REPLY_OF)
        .has_label(S.POST)
        .out(S.HAS_TAG)
        .out(S.HAS_TYPE)
        .has_param(S.NAME, "tagClassName")
        .group_count("friend", limit=20)
    )


def params_ic12(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC12."""
    return {
        "person": dataset.random_person(rng),
        "tagClassName": dataset.random_tagclass_name(rng),
    }


# ---------------------------------------------------------------------------
# IC13 — shortest path length between two persons over `knows`
# (min over the distance memo; [None] ⇒ unreachable within 6 hops ⇒ -1)
# ---------------------------------------------------------------------------


def build_ic13() -> Traversal:
    """Build the IC13 traversal."""
    return (
        Traversal("IC13")
        .v_param("person1")
        .khop(S.KNOWS, k=6, dist_binding="dist", emit="improving")
        .filter_(X.vertex().eq(X.param("person2")))
        .min_("dist")
    )


def params_ic13(dataset: SNBDataset, rng: random.Random) -> Dict[str, Any]:
    """Generate parameters for IC13."""
    p1 = dataset.random_person(rng)
    p2 = dataset.random_person(rng)
    while p2 == p1 and len(dataset.persons) > 1:
        p2 = dataset.random_person(rng)
    return {"person1": p1, "person2": p2}


# ---------------------------------------------------------------------------
# IC14 — trusted connection paths between two persons (simplified: the
# minimum combined meeting distance over a bidirectional 2-hop join — both
# endpoints expand simultaneously and meet in the middle, paper Fig 3's
# join-centric plan applied to path search)
# ---------------------------------------------------------------------------


def build_ic14() -> Traversal:
    """Build the IC14 traversal."""
    side_a = (
        Traversal("IC14.fromP1")
        .v_param("person1")
        .khop(S.KNOWS, k=2, dist_binding="d1", emit="improving")
        .as_("mid1")
    )
    side_b = (
        Traversal("IC14.fromP2")
        .v_param("person2")
        .khop(S.KNOWS, k=2, dist_binding="d2", emit="improving")
        .as_("mid2")
    )
    return (
        Traversal.join("IC14", side_a, "mid1", side_b, "mid2")
        .project(total=X.binding("d1").add(X.binding("d2")))
        .min_("total")
    )


params_ic14 = params_ic13


IC_QUERIES: Dict[int, QueryDef] = {
    1: QueryDef(1, "IC1", "transitive friends by first name", build_ic1, params_ic1),
    2: QueryDef(2, "IC2", "recent messages by friends", build_ic2, params_ic2),
    3: QueryDef(3, "IC3", "friends posting from a country", build_ic3, params_ic3),
    4: QueryDef(4, "IC4", "new topics on friends' posts", build_ic4, params_ic4),
    5: QueryDef(5, "IC5", "new groups joined by friends", build_ic5, params_ic5),
    6: QueryDef(6, "IC6", "co-occurring tags (join)", build_ic6, params_ic6),
    7: QueryDef(7, "IC7", "recent likers", build_ic7, params_ic7),
    8: QueryDef(8, "IC8", "recent replies", build_ic8, params_ic8),
    9: QueryDef(9, "IC9", "recent messages within 2 hops", build_ic9, params_ic9),
    10: QueryDef(10, "IC10", "friend recommendation (join)", build_ic10, params_ic10),
    11: QueryDef(11, "IC11", "job referral", build_ic11, params_ic11),
    12: QueryDef(12, "IC12", "expert search", build_ic12, params_ic12),
    13: QueryDef(13, "IC13", "shortest knows-path length", build_ic13, params_ic13),
    14: QueryDef(14, "IC14", "trusted connection paths (join)", build_ic14, params_ic14),
}
