"""LDBC SNB interactive queries: complex reads (IC), short reads (IS),
and updates (UP)."""

from repro.ldbc.queries.ic import IC_QUERIES, QueryDef
from repro.ldbc.queries.short import IS_QUERIES
from repro.ldbc.queries.updates import UP_QUERIES, UpdateDef

__all__ = ["IC_QUERIES", "IS_QUERIES", "QueryDef", "UP_QUERIES", "UpdateDef"]
