"""LDBC Social Network Benchmark schema (vertex/edge labels, properties).

A faithful subset of the SNB interactive schema — every label and edge type
the 14 interactive complex (IC) queries touch. Property names follow the
benchmark specification (https://ldbcouncil.org/ldbc_snb_docs/).
"""

from __future__ import annotations

# -- vertex labels -------------------------------------------------------------

PERSON = "person"
FORUM = "forum"
POST = "post"
COMMENT = "comment"
TAG = "tag"
TAGCLASS = "tagclass"
CITY = "city"
COUNTRY = "country"
CONTINENT = "continent"
UNIVERSITY = "university"
COMPANY = "company"

MESSAGE_LABELS = (POST, COMMENT)
PLACE_LABELS = (CITY, COUNTRY, CONTINENT)
ORGANISATION_LABELS = (UNIVERSITY, COMPANY)

ALL_VERTEX_LABELS = (
    PERSON,
    FORUM,
    POST,
    COMMENT,
    TAG,
    TAGCLASS,
    CITY,
    COUNTRY,
    CONTINENT,
    UNIVERSITY,
    COMPANY,
)

# -- edge labels -----------------------------------------------------------------

KNOWS = "knows"                  # person -> person (mutual: stored both ways)
HAS_CREATOR = "hasCreator"       # post/comment -> person
CONTAINER_OF = "containerOf"     # forum -> post
HAS_MEMBER = "hasMember"         # forum -> person (joinDate)
HAS_MODERATOR = "hasModerator"   # forum -> person
REPLY_OF = "replyOf"             # comment -> post/comment
HAS_TAG = "hasTag"               # post/comment -> tag
HAS_INTEREST = "hasInterest"     # person -> tag
HAS_TYPE = "hasType"             # tag -> tagclass
IS_SUBCLASS_OF = "isSubclassOf"  # tagclass -> tagclass
IS_LOCATED_IN = "isLocatedIn"    # person -> city, message -> country, org -> place
IS_PART_OF = "isPartOf"          # city -> country -> continent
STUDY_AT = "studyAt"             # person -> university (classYear)
WORK_AT = "workAt"               # person -> company (workFrom)
LIKES = "likes"                  # person -> post/comment (creationDate)

ALL_EDGE_LABELS = (
    KNOWS,
    HAS_CREATOR,
    CONTAINER_OF,
    HAS_MEMBER,
    HAS_MODERATOR,
    REPLY_OF,
    HAS_TAG,
    HAS_INTEREST,
    HAS_TYPE,
    IS_SUBCLASS_OF,
    IS_LOCATED_IN,
    IS_PART_OF,
    STUDY_AT,
    WORK_AT,
    LIKES,
)

# -- property keys ------------------------------------------------------------------

# person
FIRST_NAME = "firstName"
LAST_NAME = "lastName"
GENDER = "gender"
BIRTHDAY = "birthday"            # integer day-of-year-cycle (0..365)
CREATION_DATE = "creationDate"   # integer days since epoch
LOCATION_IP = "locationIP"
BROWSER_USED = "browserUsed"

# message
CONTENT = "content"
LENGTH = "length"
LANGUAGE = "language"
IMAGE_FILE = "imageFile"

# forum / tag / place / organisation
TITLE = "title"
NAME = "name"
JOIN_DATE = "joinDate"
CLASS_YEAR = "classYear"
WORK_FROM = "workFrom"

#: Property indexes the LDBC query plans rely on (IndexLookup sources).
DEFAULT_INDEXES = [
    (PERSON, "id"),
    (PERSON, FIRST_NAME),
    (POST, "id"),
    (COMMENT, "id"),
    (FORUM, "id"),
    (TAG, NAME),
    (TAGCLASS, NAME),
    (COUNTRY, NAME),
]

#: Simulated "today" for date-window parameters (days since epoch).
MAX_DATE = 2000
