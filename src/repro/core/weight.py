"""Progression weights over a finite abelian group (paper §III-B and §IV-A).

The paper tracks traversal termination with *progression weights*: the root
traverser carries weight 1; a traverser that spawns ``n`` children divides its
weight among them; a traverser that halts reports its weight as *finished*.
The invariant is::

    sum(active weights) + finished weight == 1

so termination is detected exactly when the finished total reaches 1.

Implementing this with floating point suffers underflow once traversals fan
out millions of ways. The paper instead works in a finite abelian group
``G = Z_{2^64}``: to split a weight ``w`` into two parts, draw ``a`` uniformly
from ``G`` and emit ``(a, w - a)``. Theorem 1 bounds the false-positive
probability of termination detection at ``(n - 1) / |G|`` for ``n`` coalesced
weight reports — about 5.4e-20 per report with 64-bit words.

This module provides:

* :data:`GROUP_MODULUS` — the group order ``2^64``.
* :func:`split_weight` — split a weight into ``n`` uniformly random parts that
  sum to the parent weight (mod ``2^64``).
* :class:`WeightLedger` — the tracker-side accumulator that detects
  termination when the received total equals the root weight.
* :class:`WeightAccumulator` — the worker-side coalescing buffer (paper
  §IV-A(a), "weight coalescing").
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import TerminationError

#: Order of the abelian group used for weight arithmetic (64-bit integers).
GROUP_MODULUS: int = 1 << 64

#: The weight assigned to the root traverser of each (sub)query.
ROOT_WEIGHT: int = 1


def normalize_weight(w: int) -> int:
    """Reduce ``w`` into the canonical range ``[0, 2^64)``."""
    return w % GROUP_MODULUS


def add_weights(a: int, b: int) -> int:
    """Group addition: ``(a + b) mod 2^64``."""
    return (a + b) % GROUP_MODULUS


def sub_weights(a: int, b: int) -> int:
    """Group subtraction: ``(a - b) mod 2^64``."""
    return (a - b) % GROUP_MODULUS


def split_weight(w: int, n: int, rng: random.Random) -> List[int]:
    """Split weight ``w`` into ``n`` parts summing to ``w`` (mod ``2^64``).

    The first ``n - 1`` parts are drawn independently and uniformly from the
    group; the last part is the remainder. This is exactly the scheme of
    paper §IV-A(b): each split is uniform, so any strict-prefix partial sum
    observed by the tracker is uniform over the group, which yields the
    Theorem 1 false-positive bound.

    Args:
        w: parent weight (any integer; reduced mod ``2^64``).
        n: number of children, ``n >= 1``.
        rng: deterministic random source (one per query for reproducibility).

    Returns:
        List of ``n`` weights whose group sum equals ``w``.
    """
    if n < 1:
        raise ValueError(f"cannot split weight into {n} parts")
    w = normalize_weight(w)
    if n == 1:
        return [w]
    parts = [rng.getrandbits(64) for _ in range(n - 1)]
    last = w
    for p in parts:
        last = sub_weights(last, p)
    parts.append(last)
    return parts


def split_weights_batch(
    weights: List[int], counts: List[int], rng: random.Random
) -> List[List[int]]:
    """Split many parent weights in one call (batch execution hot path).

    For each parent ``weights[i]`` produce ``counts[i]`` child weights using
    *exactly* the same RNG draw sequence as calling
    :func:`split_weight(weights[i], counts[i], rng) <split_weight>` for each
    parent in order. This is what keeps the batched execution path
    bit-for-bit reproducible against the scalar path: the group invariant
    ``sum(children) ≡ parent (mod 2^64)`` holds per parent, and a scalar and
    a batched engine driven by the same seeded RNG assign identical weights
    to identical traversers.

    A count of ``0`` yields an empty list and draws nothing (the scalar path
    never calls :func:`split_weight` for a finished traverser); a count of
    ``1`` returns the normalized parent weight without drawing.

    The batch form amortizes per-call overhead: the RNG method and the group
    modulus are bound once for the whole batch instead of once per parent.
    """
    if len(weights) != len(counts):
        raise ValueError("weights and counts must be parallel lists")
    getrandbits = rng.getrandbits
    modulus = GROUP_MODULUS
    out: List[List[int]] = []
    append = out.append
    for w, n in zip(weights, counts):
        if n == 0:
            append([])
            continue
        w %= modulus
        if n == 1:
            append([w])
            continue
        if n < 0:
            raise ValueError(f"cannot split weight into {n} parts")
        parts = [getrandbits(64) for _ in range(n - 1)]
        last = w
        for p in parts:
            last = (last - p) % modulus
        parts.append(last)
        append(parts)
    return out


class WeightLedger:
    """Tracker-side termination detector for one (sub)query.

    The ledger receives finished-weight reports and declares the traversal
    complete when the accumulated group sum equals the root weight. It also
    counts reports so callers can evaluate the Theorem 1 bound.
    """

    def __init__(self, root_weight: int = ROOT_WEIGHT) -> None:
        self._root_weight = normalize_weight(root_weight)
        self._received = 0
        self._report_count = 0
        self._terminated = False

    @property
    def root_weight(self) -> int:
        return self._root_weight

    @property
    def received(self) -> int:
        """Group sum of all finished weights received so far."""
        return self._received

    @property
    def report_count(self) -> int:
        """Number of weight reports received (the ``n`` of Theorem 1)."""
        return self._report_count

    @property
    def terminated(self) -> bool:
        return self._terminated

    def false_positive_bound(self) -> float:
        """Upper bound on P(false-positive termination) per Theorem 1."""
        n = self._report_count
        if n <= 1:
            return 0.0
        return (n - 1) / GROUP_MODULUS

    def report(self, weight: int) -> bool:
        """Record a finished-weight report.

        Returns ``True`` exactly when this report completes the traversal
        (the accumulated sum reaches the root weight).
        """
        if self._terminated:
            raise TerminationError("weight reported after termination")
        self._received = add_weights(self._received, weight)
        self._report_count += 1
        if self._received == self._root_weight:
            self._terminated = True
        return self._terminated

    def reset(self) -> None:
        """Reset the ledger for reuse by a fresh (sub)query."""
        self._received = 0
        self._report_count = 0
        self._terminated = False


class WeightAccumulator:
    """Worker-side coalescing buffer for finished weights (paper §IV-A(a)).

    Finished weights are first accumulated locally; the combined weight is
    flushed to the progress tracker together with the worker's message
    buffer, collapsing many per-traverser reports into one message.
    """

    def __init__(self) -> None:
        self._pending = 0
        self._pending_count = 0
        self._flushes = 0
        self._absorbed = 0

    @property
    def pending(self) -> int:
        """Group sum of weights accumulated since the last flush."""
        return self._pending

    @property
    def pending_count(self) -> int:
        """Number of individual finish events since the last flush."""
        return self._pending_count

    @property
    def flush_count(self) -> int:
        """Total number of flushes performed (== messages to the tracker)."""
        return self._flushes

    @property
    def absorbed_count(self) -> int:
        """Total number of individual finish events ever absorbed."""
        return self._absorbed

    def absorb(self, weight: int) -> None:
        """Add a finished traverser's weight to the local buffer."""
        self._pending = add_weights(self._pending, weight)
        self._pending_count += 1
        self._absorbed += 1

    def absorb_many(self, total: int, count: int) -> None:
        """Absorb ``count`` finish events whose weights sum to ``total``.

        Equivalent to ``count`` :meth:`absorb` calls: addition in Z_{2^64}
        is associative, so folding a pre-summed batch yields the same
        pending weight as absorbing each event individually.
        """
        self._pending = add_weights(self._pending, total)
        self._pending_count += count
        self._absorbed += count

    def flush(self) -> Optional[int]:
        """Drain the buffer, returning the combined weight to report.

        Returns ``None`` when there is nothing pending, so callers can skip
        sending an empty tracker message.
        """
        if self._pending_count == 0:
            return None
        combined = self._pending
        self._pending = 0
        self._pending_count = 0
        self._flushes += 1
        return combined
