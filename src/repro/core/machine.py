"""The PSTM step executor: one operator application, weight-correct.

:class:`PSTMMachine` is the engine-agnostic kernel shared by every runtime:
it executes a traverser's current operator against a partition-local
:class:`~repro.core.steps.StepContext`, splits the progression weight among
the children (or reports it finished), and computes each child's routing
target. Engines differ only in *when* and *where* they call this kernel and
how they move the produced traversers around.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.steps import OpCost, PhysicalOp, StepContext
from repro.core.traverser import Traverser
from repro.core.weight import split_weight, split_weights_batch
from repro.errors import ExecutionError
from repro.graph.partition import HashPartitioner
from repro.query.plan import PhysicalPlan


@dataclass
class ExecResult:
    """Outcome of executing one traverser for one step.

    ``children`` pairs each spawned traverser with its routing target: the
    partition id where its next op must run, or ``None`` when the op is
    location-free (the engine keeps it local).
    """

    children: List[Tuple[Traverser, Optional[int]]]
    finished_weight: int
    cost: OpCost
    op: PhysicalOp


class BatchExecResult:
    """Outcome of executing a homogeneous run of traversers for one step.

    Parallel lists, one entry per input traverser:

    * ``children[i]`` — ``(child, pid)`` pairs; unlike :class:`ExecResult`,
      the partition id is already fully resolved (location-free children are
      resolved to the home of their vertex, exactly as
      :func:`resolve_partition` would), so the async worker's hot loop can
      compare it against its own pid directly.
    * ``finished[i]`` — the traverser's weight when it produced no children
      (it is finished), else ``0``.
    * ``costs[i]`` — ``(base, edges, memo_ops, props)`` event counts.
    """

    __slots__ = ("children", "finished", "costs", "op")

    def __init__(
        self,
        children: List[List[Tuple[Traverser, int]]],
        finished: List[int],
        costs: List[Tuple[int, int, int, int]],
        op: PhysicalOp,
    ) -> None:
        self.children = children
        self.finished = finished
        self.costs = costs
        self.op = op


def resolve_partition(
    trav: Traverser, partitioner: HashPartitioner, routed: Optional[int]
) -> int:
    """The partition a traverser should execute on.

    ``routed`` is the op's own routing demand (``h_ψ``); when the op is
    location-free, fall back to the home of the current vertex. Seed
    traversers for broadcast sources encode their designated partition as
    ``vertex = -pid - 1``; other vertex-less traversers (stage reseeds) run
    on partition 0.
    """
    if routed is not None:
        return routed
    if trav.vertex >= 0:
        return partitioner(trav.vertex)
    return min(-trav.vertex - 1, partitioner.num_partitions - 1)


class PSTMMachine:
    """Stateless step executor over one compiled plan.

    ``barrier_route`` forces all aggregation traversers to one partition —
    the centralized result aggregation of GAIA-like engines the paper
    contrasts with PSTM's partition-local partials (§V-B).
    """

    def __init__(
        self,
        plan: PhysicalPlan,
        partitioner: HashPartitioner,
        barrier_route: Optional[int] = None,
    ) -> None:
        self.plan = plan
        self.partitioner = partitioner
        self.barrier_route = barrier_route
        self._route_info: Optional[List[Tuple[int, str, PhysicalOp]]] = None

    def route_info(self) -> List[Tuple[int, str, PhysicalOp]]:
        """Per-op ``(stage, routing mode, op)`` table, indexed by op_idx.

        The plan is immutable after compilation and ``barrier_route`` is
        fixed at construction, so this is computed once and shared by every
        batched caller (machine and worker hot loops).
        """
        info = self._route_info
        if info is None:
            info = []
            for op in self.plan.ops:
                if op.is_barrier and self.barrier_route is not None:
                    mode = "fixed"
                else:
                    mode = op.routing_mode
                info.append((op.stage, mode, op))
            self._route_info = info
        return info

    def route(self, trav: Traverser) -> Optional[int]:
        """Partition where ``trav`` must run its current op (or None)."""
        op = self.plan.ops[trav.op_idx]
        if op.is_barrier and self.barrier_route is not None:
            return self.barrier_route
        return op.routing(self.partitioner, trav)

    def execute(
        self, ctx: StepContext, trav: Traverser, rng: random.Random
    ) -> ExecResult:
        """Run ``trav``'s current op; split or finish its weight.

        The caller must have placed ``trav`` on the partition demanded by
        :meth:`route` — ops assume their data is local.
        """
        op = self.plan.ops[trav.op_idx]
        outcome = op.apply(ctx, trav)
        specs = outcome.children
        if not specs:
            return ExecResult([], trav.weight, outcome.cost, op)
        weights = split_weight(trav.weight, len(specs), rng)
        children: List[Tuple[Traverser, Optional[int]]] = []
        for (vertex, op_idx, payload, loops), weight in zip(specs, weights):
            if op_idx < 0 or op_idx >= len(self.plan.ops):
                raise ExecutionError(
                    f"op {op.name} produced child with bad target index {op_idx}"
                )
            child = Traverser(
                query_id=trav.query_id,
                vertex=vertex,
                op_idx=op_idx,
                payload=payload,
                weight=weight,
                stage=self.plan.ops[op_idx].stage,
                loops=loops,
            )
            children.append((child, self.route(child)))
        return ExecResult(children, 0, outcome.cost, op)

    def execute_batch(
        self, ctx: StepContext, travs: Sequence[Traverser], rng: random.Random
    ) -> BatchExecResult:
        """Run a homogeneous run of traversers — same ``(query_id, op_idx)``
        — through one batched kernel call.

        Observationally identical to calling :meth:`execute` on each
        traverser in order: same children (same order, same payloads), same
        RNG draw sequence (via :func:`split_weights_batch`), same memo
        side-effect order, same per-traverser event counts. The only
        differences are representational: costs come back as tuples and
        child partitions are fully resolved (async-engine semantics — a
        location-free child resolves to its vertex home).
        """
        op = self.plan.ops[travs[0].op_idx]
        outcome = op.apply_batch(ctx, travs)
        spec_rows = outcome.children
        weight_rows = split_weights_batch(
            [t.weight for t in travs], [len(row) for row in spec_rows], rng
        )
        num_ops = len(self.plan.ops)
        partitioner = self.partitioner
        num_partitions = partitioner.num_partitions
        barrier_route = self.barrier_route
        # HashPartitioner memoizes vertex→pid in _cache; reading it directly
        # skips a method call per child on the hot path. Other partitioners
        # (no _cache) take the generic call.
        pcache = getattr(partitioner, "_cache", None)
        route_info = self.route_info()
        # Children of one run overwhelmingly target one or two ops; caching
        # the last lookup skips even the list index on the common path.
        last_idx = -1
        stage = mode = child_op = None
        children_out: List[List[Tuple[Traverser, int]]] = []
        finished: List[int] = []
        for trav, specs, weights in zip(travs, spec_rows, weight_rows):
            if not specs:
                children_out.append([])
                finished.append(trav.weight)
                continue
            query_id = trav.query_id
            row: List[Tuple[Traverser, int]] = []
            append = row.append
            for (vertex, op_idx, payload, loops), weight in zip(specs, weights):
                if op_idx != last_idx:
                    if op_idx < 0 or op_idx >= num_ops:
                        raise ExecutionError(
                            f"op {op.name} produced child with bad target "
                            f"index {op_idx}"
                        )
                    stage, mode, child_op = route_info[op_idx]
                    last_idx = op_idx
                child = Traverser(
                    query_id, vertex, op_idx, payload, weight, stage, loops
                )
                if mode == "vertex":
                    if pcache is None or (pid := pcache.get(vertex)) is None:
                        pid = partitioner(vertex)
                elif mode == "free":
                    if vertex >= 0:
                        if pcache is None or (pid := pcache.get(vertex)) is None:
                            pid = partitioner(vertex)
                    else:
                        pid = min(-vertex - 1, num_partitions - 1)
                elif mode == "fixed":
                    pid = barrier_route
                else:
                    routed = child_op.routing(partitioner, child)
                    pid = resolve_partition(child, partitioner, routed)
                append((child, pid))
            children_out.append(row)
            finished.append(0)
        return BatchExecResult(children_out, finished, outcome.costs, op)
