"""The PSTM step executor: one operator application, weight-correct.

:class:`PSTMMachine` is the engine-agnostic kernel shared by every runtime:
it executes a traverser's current operator against a partition-local
:class:`~repro.core.steps.StepContext`, splits the progression weight among
the children (or reports it finished), and computes each child's routing
target. Engines differ only in *when* and *where* they call this kernel and
how they move the produced traversers around.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.steps import OpCost, PhysicalOp, StepContext
from repro.core.traverser import Traverser
from repro.core.weight import split_weight
from repro.errors import ExecutionError
from repro.graph.partition import HashPartitioner
from repro.query.plan import PhysicalPlan


@dataclass
class ExecResult:
    """Outcome of executing one traverser for one step.

    ``children`` pairs each spawned traverser with its routing target: the
    partition id where its next op must run, or ``None`` when the op is
    location-free (the engine keeps it local).
    """

    children: List[Tuple[Traverser, Optional[int]]]
    finished_weight: int
    cost: OpCost
    op: PhysicalOp


def resolve_partition(
    trav: Traverser, partitioner: HashPartitioner, routed: Optional[int]
) -> int:
    """The partition a traverser should execute on.

    ``routed`` is the op's own routing demand (``h_ψ``); when the op is
    location-free, fall back to the home of the current vertex. Seed
    traversers for broadcast sources encode their designated partition as
    ``vertex = -pid - 1``; other vertex-less traversers (stage reseeds) run
    on partition 0.
    """
    if routed is not None:
        return routed
    if trav.vertex >= 0:
        return partitioner(trav.vertex)
    return min(-trav.vertex - 1, partitioner.num_partitions - 1)


class PSTMMachine:
    """Stateless step executor over one compiled plan.

    ``barrier_route`` forces all aggregation traversers to one partition —
    the centralized result aggregation of GAIA-like engines the paper
    contrasts with PSTM's partition-local partials (§V-B).
    """

    def __init__(
        self,
        plan: PhysicalPlan,
        partitioner: HashPartitioner,
        barrier_route: Optional[int] = None,
    ) -> None:
        self.plan = plan
        self.partitioner = partitioner
        self.barrier_route = barrier_route

    def route(self, trav: Traverser) -> Optional[int]:
        """Partition where ``trav`` must run its current op (or None)."""
        op = self.plan.ops[trav.op_idx]
        if op.is_barrier and self.barrier_route is not None:
            return self.barrier_route
        return op.routing(self.partitioner, trav)

    def execute(
        self, ctx: StepContext, trav: Traverser, rng: random.Random
    ) -> ExecResult:
        """Run ``trav``'s current op; split or finish its weight.

        The caller must have placed ``trav`` on the partition demanded by
        :meth:`route` — ops assume their data is local.
        """
        op = self.plan.ops[trav.op_idx]
        outcome = op.apply(ctx, trav)
        specs = outcome.children
        if not specs:
            return ExecResult([], trav.weight, outcome.cost, op)
        weights = split_weight(trav.weight, len(specs), rng)
        children: List[Tuple[Traverser, Optional[int]]] = []
        for (vertex, op_idx, payload, loops), weight in zip(specs, weights):
            if op_idx < 0 or op_idx >= len(self.plan.ops):
                raise ExecutionError(
                    f"op {op.name} produced child with bad target index {op_idx}"
                )
            child = Traverser(
                query_id=trav.query_id,
                vertex=vertex,
                op_idx=op_idx,
                payload=payload,
                weight=weight,
                stage=self.plan.ops[op_idx].stage,
                loops=loops,
            )
            children.append((child, self.route(child)))
        return ExecResult(children, 0, outcome.cost, op)
