"""Traversers: the unit of work of the PSTM (paper §III-B).

A PSTM traverser is the 4-tuple ``(v, ψ, π, w)``:

* ``v`` — the current vertex (:attr:`Traverser.vertex`);
* ``ψ`` — the current step, here an index into the physical plan's operator
  list (:attr:`Traverser.op_idx`);
* ``π`` — local variables, here a fixed-width tuple of *payload slots*
  assigned by the compiler (:attr:`Traverser.payload`);
* ``w`` — the progression weight, a 64-bit group element
  (:attr:`Traverser.weight`, see :mod:`repro.core.weight`).

Traversers also carry the id of the query that owns them, the plan *stage*
they belong to (each aggregation subquery is a stage with its own weight
ledger), and a loop counter used by repeat-style steps.

Implementation note: engines create millions of traversers per benchmark
run, so this is a hand-rolled ``__slots__`` class rather than a dataclass —
construction cost dominates the simulation's hot path.
"""

from __future__ import annotations

from typing import Any, Tuple


class Traverser:
    """An immutable-by-convention traverser; steps derive new ones."""

    __slots__ = ("query_id", "vertex", "op_idx", "payload", "weight", "stage", "loops")

    def __init__(
        self,
        query_id: int,
        vertex: int,
        op_idx: int,
        payload: Tuple[Any, ...],
        weight: int,
        stage: int = 0,
        loops: int = 0,
    ) -> None:
        self.query_id = query_id
        self.vertex = vertex
        self.op_idx = op_idx
        self.payload = payload
        self.weight = weight
        self.stage = stage
        self.loops = loops

    def evolve(self, **changes: Any) -> "Traverser":
        """A copy with the given fields replaced."""
        return Traverser(
            changes.get("query_id", self.query_id),
            changes.get("vertex", self.vertex),
            changes.get("op_idx", self.op_idx),
            changes.get("payload", self.payload),
            changes.get("weight", self.weight),
            changes.get("stage", self.stage),
            changes.get("loops", self.loops),
        )

    def with_slot(self, slot: int, value: Any) -> Tuple[Any, ...]:
        """The payload tuple with one slot replaced (helper for steps)."""
        payload = self.payload
        return payload[:slot] + (value,) + payload[slot + 1 :]

    def estimated_size_bytes(self) -> int:
        """Wire-size estimate used by the simulated network.

        Covers the fixed header (query id, vertex, op index, weight, stage,
        loops ≈ 40 bytes) plus a per-slot estimate of the payload.
        """
        size = 40
        for value in self.payload:
            size += _slot_size(value)
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Traverser(q={self.query_id}, v={self.vertex}, op={self.op_idx}, "
            f"stage={self.stage}, w={self.weight})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Traverser):
            return NotImplemented
        return (
            self.query_id == other.query_id
            and self.vertex == other.vertex
            and self.op_idx == other.op_idx
            and self.payload == other.payload
            and self.weight == other.weight
            and self.stage == other.stage
            and self.loops == other.loops
        )


def _slot_size(value: Any) -> int:
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, tuple):
        return sum(_slot_size(v) for v in value)
    return 16


def make_root(
    query_id: int,
    vertex: int,
    op_idx: int,
    payload_width: int,
    weight: int,
    stage: int = 0,
) -> Traverser:
    """Construct a stage-root traverser with an all-``None`` payload."""
    return Traverser(
        query_id=query_id,
        vertex=vertex,
        op_idx=op_idx,
        payload=(None,) * payload_width,
        weight=weight,
        stage=stage,
    )
