"""PSTM core: traversers, weights, memos, operators, progress tracking."""

from repro.core.machine import ExecResult, PSTMMachine, resolve_partition
from repro.core.memo import MemoStore, QueryMemo
from repro.core.progress import ProgressMode, ProgressTracker
from repro.core.subquery import StageCursor, gather_partials
from repro.core.traverser import Traverser, make_root
from repro.core.weight import (
    GROUP_MODULUS,
    ROOT_WEIGHT,
    WeightAccumulator,
    WeightLedger,
    add_weights,
    split_weight,
    sub_weights,
)

__all__ = [
    "ExecResult",
    "GROUP_MODULUS",
    "MemoStore",
    "PSTMMachine",
    "ProgressMode",
    "ProgressTracker",
    "QueryMemo",
    "ROOT_WEIGHT",
    "StageCursor",
    "Traverser",
    "WeightAccumulator",
    "WeightLedger",
    "add_weights",
    "gather_partials",
    "make_root",
    "resolve_partition",
    "split_weight",
    "sub_weights",
]
