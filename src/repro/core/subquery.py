"""Stage (subquery) lifecycle shared by all engines (paper §III-C, Fig 6).

A plan is a pipeline of *stages*, each terminated by an aggregation barrier
and progress-tracked independently. When a stage's weight ledger completes,
the engine:

1. gathers the barrier's partition-local partials from the memos
   (:func:`gather_partials` — one gather message per non-empty partition),
2. merges them with the barrier's ``combine``,
3. either finalizes the query (last stage) or ``reseed``s the next stage
   with a fresh root weight.

:class:`StageCursor` tracks which stage a query session is in and exposes
the seed traversers for the next stage; it contains no I/O so every engine
(async, BSP, variants) reuses it unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.memo import MemoStore
from repro.core.steps import AggregateOp
from repro.core.traverser import Traverser
from repro.core.weight import ROOT_WEIGHT, split_weight
from repro.errors import ExecutionError
from repro.query.plan import PhysicalPlan


@dataclass
class GatheredPartial:
    """One partition's contribution to a stage barrier."""

    pid: int
    value: Any
    size_bytes: int


def gather_partials(
    plan: PhysicalPlan,
    stage_index: int,
    query_id: int,
    memo_stores: Sequence[MemoStore],
) -> List[GatheredPartial]:
    """Collect the barrier's partials from every partition's memo.

    Partitions that never absorbed a traverser contribute nothing (and cost
    no gather message).
    """
    barrier = plan.barrier_of(stage_index)
    gathered: List[GatheredPartial] = []
    for store in memo_stores:
        memo = store.peek(query_id)
        if memo is None:
            continue
        value = barrier.partial(memo)
        if value is None:
            continue
        gathered.append(
            GatheredPartial(store.pid, value, barrier.estimated_partial_size(value))
        )
    return gathered


class StageCursor:
    """Per-query stage progression state."""

    def __init__(self, plan: PhysicalPlan, query_id: int) -> None:
        self.plan = plan
        self.query_id = query_id
        self.current = 0
        self.results: Optional[List[Any]] = None

    @property
    def finished(self) -> bool:
        return self.results is not None

    def barrier(self) -> AggregateOp:
        """The aggregation barrier of the current stage."""
        return self.plan.barrier_of(self.current)

    def complete_stage(
        self,
        partials: List[GatheredPartial],
        rng: random.Random,
    ) -> List[Traverser]:
        """Combine partials; finalize or produce next-stage seed traversers.

        Returns the seeds for the next stage ([] when the query is done, in
        which case :attr:`results` holds the final rows).
        """
        if self.finished:
            raise ExecutionError(f"query {self.query_id} already finished")
        barrier = self.barrier()
        combined = barrier.combine([p.value for p in partials])
        if self.plan.is_final_stage(self.current):
            self.results = barrier.finalize(combined)
            return []
        seeds = barrier.reseed(combined)
        self.current += 1
        entry_idx = self.plan.stage(self.current).entry_idx
        if not seeds:
            # An empty reseed means the next stage terminates immediately
            # with no input; represent it as zero traversers — the caller
            # must then complete the stage with no partials.
            return []
        weights = split_weight(ROOT_WEIGHT, len(seeds), rng)
        traversers = []
        for (vertex, payload), weight in zip(seeds, weights):
            width = self.plan.payload_width
            if len(payload) < width:
                payload = payload + (None,) * (width - len(payload))
            elif len(payload) > width:
                payload = payload[:width]
            traversers.append(
                Traverser(
                    query_id=self.query_id,
                    vertex=vertex,
                    op_idx=entry_idx,
                    payload=payload,
                    weight=weight,
                    stage=self.current,
                )
            )
        return traversers
