"""Progress tracking and termination detection (paper §III-B, §IV-A).

Detecting that an asynchronous traversal has terminated means certifying a
global quiescent state: no active traversers anywhere and none in flight.
The paper's weight-throwing scheme does this with one 64-bit addition per
finished traverser. This module implements the tracker-side state for the
three tracking modes the evaluation compares:

* :attr:`ProgressMode.WEIGHTED_COALESCED` — full GraphDance: workers fold
  finished weights into a local accumulator and piggyback the combined value
  on their next message-buffer flush (weight coalescing, §IV-A(a));
* :attr:`ProgressMode.WEIGHTED_IMMEDIATE` — the weight of every finished
  traverser is sent to the tracker as its own message (the "WC disabled"
  configuration of Fig 10/11);
* :attr:`ProgressMode.NAIVE_CENTRAL` — the strawman the paper measures as
  up to 4.46× slower: every *execution* reports an active-count delta to a
  centralized tracker, which declares termination on count zero.

The tracker is pure bookkeeping; the engines place it on a concrete worker
and charge CPU/network costs for its messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, Optional, Tuple

from repro.core.weight import ROOT_WEIGHT, WeightLedger
from repro.errors import TerminationError


class ProgressMode(Enum):
    """How query progress is tracked and termination detected."""

    WEIGHTED_COALESCED = "weighted+wc"
    WEIGHTED_IMMEDIATE = "weighted"
    NAIVE_CENTRAL = "naive"

    @property
    def is_weighted(self) -> bool:
        return self is not ProgressMode.NAIVE_CENTRAL

    @property
    def coalesced(self) -> bool:
        return self is ProgressMode.WEIGHTED_COALESCED


@dataclass
class NaiveCounter:
    """Active-traverser counter for the naive centralized mode.

    Deltas may arrive out of order (a child's finish can overtake its
    parent's spawn report on a faster network path), so the counter may go
    transiently negative and may cross zero before true quiescence. The
    engine therefore validates every zero crossing against actual global
    state before declaring termination.
    """

    active: int = 0
    reports: int = 0

    def report(self, delta: int) -> bool:
        """Apply a delta; True when the count reaches zero."""
        self.active += delta
        self.reports += 1
        return self.active == 0


class ProgressTracker:
    """Central tracker for all (query, stage) subqueries.

    One instance exists per engine run; it is hosted by a single designated
    worker (the centralization the paper's weight coalescing relieves).
    ``on_complete(query_id, stage)`` fires exactly once per subquery.
    """

    def __init__(
        self,
        mode: ProgressMode,
        on_complete: Callable[[int, int], None],
    ) -> None:
        self.mode = mode
        self._on_complete = on_complete
        self._ledgers: Dict[Tuple[int, int], WeightLedger] = {}
        self._counters: Dict[Tuple[int, int], NaiveCounter] = {}
        self._messages_received = 0
        self._reclaim_reports = 0

    @property
    def messages_received(self) -> int:
        """Progress messages processed — the tracker's load (Fig 11)."""
        return self._messages_received

    @property
    def reclaim_reports(self) -> int:
        """Weight reports folded in by cancellation reclamation."""
        return self._reclaim_reports

    @property
    def open_stage_count(self) -> int:
        """Ledgers/counters currently held — must drain to 0 at idle.

        Tests assert this after any mix of completions, timeouts, and
        cancellations: a nonzero value at quiescence is a leaked stage.
        """
        return len(self._ledgers) + len(self._counters)

    def open_stage(self, query_id: int, stage: int) -> None:
        """Register a new subquery before any of its reports can arrive."""
        key = (query_id, stage)
        if self.mode.is_weighted:
            if key in self._ledgers:
                raise TerminationError(f"stage {key} already open")
            self._ledgers[key] = WeightLedger(ROOT_WEIGHT)
        else:
            if key in self._counters:
                raise TerminationError(f"stage {key} already open")
            # The stage's root traverser is accounted at open time.
            self._counters[key] = NaiveCounter(active=0)

    def close_stage(self, query_id: int, stage: int) -> None:
        """Drop one stage's ledger/counter once the engine consumed it.

        Called at every stage boundary so terminated ledgers do not pile up
        for the life of a long query, and so late weight reports for the
        stage (e.g. retransmitted duplicates under fault injection) resolve
        to the "unknown stage" path in :meth:`report_weight` rather than
        touching a terminated ledger. After this call :meth:`ledger`
        returns ``None`` for the stage.
        """
        key = (query_id, stage)
        self._ledgers.pop(key, None)
        self._counters.pop(key, None)

    def close_query(self, query_id: int) -> None:
        """Drop *all* state of a finished/aborted/retried query.

        Every per-stage ledger and naive counter belonging to ``query_id``
        is removed — after this call :meth:`ledger` returns ``None`` for
        every stage of the query and late reports are silently ignored, so
        a closed query can never re-fire ``on_complete`` or leak ledgers.
        """
        for store in (self._ledgers, self._counters):
            for key in [k for k in store if k[0] == query_id]:
                del store[key]

    def report_weight(self, query_id: int, stage: int, weight: int) -> bool:
        """Fold one finished-weight report into a stage's ledger.

        Returns ``True`` exactly when this report completes the stage (the
        ledger's group sum reaches the root weight — Theorem 1), in which
        case ``on_complete(query_id, stage)`` has fired. Reports for
        unknown or already-terminated stages — late arrivals from closed
        queries, stale retransmits — are counted but otherwise ignored and
        return ``False``.
        """
        if not self.mode.is_weighted:
            raise TerminationError("weight report in naive mode")
        self._messages_received += 1
        key = (query_id, stage)
        ledger = self._ledgers.get(key)
        if ledger is None or ledger.terminated:
            return False  # stale report from an already-closed stage
        if ledger.report(weight):
            self._on_complete(query_id, stage)
            return True
        return False

    def report_reclaimed(self, query_id: int, stage: int, weight: int) -> bool:
        """Fold reclaimed weight from a cancelled query's purged traversers.

        Cancellation discards traversers instead of executing them; their
        progression weight would otherwise be lost and the stage ledger
        could never reach the root weight (the same signature as a dropped
        packet — see docs/FAULTS.md). Reclamation reports the discarded
        weight on the query's behalf so ``Σ active + finished = 1``
        (Theorem 1) still closes and the ledger terminates cleanly,
        letting the engine finalize the cancellation without a watchdog.

        Same ledger arithmetic as :meth:`report_weight`, but counted
        separately (``reclaim_reports``) because these reports are minted
        by the cancellation protocol, not by finished traversers.
        """
        if not self.mode.is_weighted:
            raise TerminationError("weight reclamation in naive mode")
        self._reclaim_reports += 1
        key = (query_id, stage)
        ledger = self._ledgers.get(key)
        if ledger is None or ledger.terminated:
            return False  # stage already closed; nothing left to reclaim
        if ledger.report(weight):
            self._on_complete(query_id, stage)
            return True
        return False

    def add_naive_active(self, query_id: int, stage: int, count: int) -> None:
        """Account root traversers injected by the coordinator (no message)."""
        counter = self._counters.get((query_id, stage))
        if counter is None:
            raise TerminationError(f"stage ({query_id}, {stage}) not open")
        counter.active += count

    def report_delta(self, query_id: int, stage: int, delta: int) -> bool:
        """Naive-mode active-count delta. Returns True on termination."""
        if self.mode.is_weighted:
            raise TerminationError("delta report in weighted mode")
        self._messages_received += 1
        key = (query_id, stage)
        counter = self._counters.get(key)
        if counter is None:
            return False
        if counter.report(delta):
            self._on_complete(query_id, stage)
            return True
        return False

    def ledger(self, query_id: int, stage: int) -> Optional[WeightLedger]:
        """The weighted ledger of one *open* stage.

        Returns ``None`` for stages that were never opened or whose state
        was dropped by :meth:`close_stage` / :meth:`close_query` — callers
        (e.g. the engine's fault watchdog reading ``ledger().received`` as
        a progress fingerprint) must handle the ``None`` case.
        """
        return self._ledgers.get((query_id, stage))
