"""Query memoranda: per-partition, query-scoped key-value stores (§III-B).

Memos are the "stateful" half of the partitioned stateful graph model
``G = (V, E, λ, H, M)``. Each partition ``p`` owns one memo store ``M_p``;
traversers running on that partition may freely read and write it without
concurrency control (each partition is single-threaded). Two invariants from
the paper are enforced here:

* **query isolation** — a query can only access memo records it created;
  records are namespaced by query id and :meth:`MemoStore.clear_query`
  drops everything when the creating query terminates;
* **label namespacing** — within one query, records are grouped under
  user-defined labels (the paper's example: ``M_{H(v)}[Distance, v]``).

Memo access patterns used by the operators:

* ``Distance``-style get/put-if-better (k-hop pruning, Fig 5),
* set membership with insert-if-absent (incremental ``Dedup``),
* per-key append (double-pipelined ``Join`` hash tables),
* accumulate with a combine function (partition-local aggregation partials,
  weight coalescing).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.errors import MemoError

#: modelled bytes per memo record (key + value + dict-slot overhead)
BYTES_PER_RECORD = 48
#: modelled extra bytes per element of a list-valued record (join builds)
BYTES_PER_LIST_ELEMENT = 16

#: a snapshot of one query's memo shard: label -> {key: value} with every
#: mutable container value copied (see :meth:`QueryMemo.snapshot`)
MemoSnapshot = Dict[str, Dict[Hashable, Any]]


def _copy_value(value: Any) -> Any:
    """Copy a memo record value so a snapshot cannot alias live state.

    Operator-written values are ints, tuples, strings, or the three
    mutable containers the operators build in place: lists (join build
    sides, Collect partials), dicts (GroupCount partials), and sets. One
    level of copying suffices — the operators never nest a mutable
    container inside another memo value.
    """
    t = type(value)
    if t is list:
        return list(value)
    if t is dict:
        return dict(value)
    if t is set:
        return set(value)
    return value


class QueryMemo:
    """All memo records one query owns within one partition."""

    __slots__ = ("_tables", "_op_count")

    def __init__(self) -> None:
        self._tables: Dict[str, Dict[Hashable, Any]] = {}
        self._op_count = 0

    def table(self, label: str) -> Dict[Hashable, Any]:
        """The raw dict backing one label (created on first use)."""
        tbl = self._tables.get(label)
        if tbl is None:
            tbl = {}
            self._tables[label] = tbl
        return tbl

    # -- primitive operations -------------------------------------------

    def get(self, label: str, key: Hashable, default: Any = None) -> Any:
        """Read the record at ``key`` (or ``default``)."""
        self._op_count += 1
        return self.table(label).get(key, default)

    def put(self, label: str, key: Hashable, value: Any) -> None:
        """Write the record at ``key``."""
        self._op_count += 1
        self.table(label)[key] = value

    def contains(self, label: str, key: Hashable) -> bool:
        """True when a record exists at ``key``."""
        self._op_count += 1
        return key in self.table(label)

    def insert_if_absent(self, label: str, key: Hashable) -> bool:
        """Set-style insert. Returns True when ``key`` was newly inserted —
        the primitive behind incremental Dedup."""
        self._op_count += 1
        tbl = self.table(label)
        if key in tbl:
            return False
        tbl[key] = True
        return True

    def put_if_less(self, label: str, key: Hashable, value: Any) -> bool:
        """Keep the minimum value per key. Returns True when ``value``
        improved (or created) the record — the k-hop Distance primitive."""
        self._op_count += 1
        tbl = self.table(label)
        old = tbl.get(key)
        if old is None or value < old:
            tbl[key] = value
            return True
        return False

    def append(self, label: str, key: Hashable, value: Any) -> List[Any]:
        """Append to the list at ``key`` and return it (join build side)."""
        self._op_count += 1
        tbl = self.table(label)
        lst = tbl.get(key)
        if lst is None:
            lst = []
            tbl[key] = lst
        lst.append(value)
        return lst

    def get_list(self, label: str, key: Hashable) -> List[Any]:
        """The list at ``key`` (empty if absent) — join probe side."""
        self._op_count += 1
        lst = self.table(label).get(key)
        return lst if lst is not None else []

    def accumulate(
        self,
        label: str,
        key: Hashable,
        value: Any,
        combine: Callable[[Any, Any], Any],
    ) -> Any:
        """Fold ``value`` into the record at ``key`` with ``combine``."""
        self._op_count += 1
        tbl = self.table(label)
        if key in tbl:
            tbl[key] = combine(tbl[key], value)
        else:
            tbl[key] = value
        return tbl[key]

    # -- checkpointing ---------------------------------------------------

    def snapshot(self) -> MemoSnapshot:
        """Copy every table for a checkpoint (docs/RECOVERY.md).

        The copy is value-deep enough that later operator mutations (list
        appends, dict updates) cannot leak into a stored checkpoint; the
        snapshot is taken at a stage boundary, where no traverser of the
        query is executing, so it is trivially consistent.
        """
        return {
            label: {k: _copy_value(v) for k, v in tbl.items()}
            for label, tbl in self._tables.items()
        }

    @classmethod
    def from_snapshot(cls, tables: MemoSnapshot) -> "QueryMemo":
        """Rebuild a memo from a snapshot, copying again so one stored
        checkpoint can seed several restore attempts independently."""
        memo = cls()
        memo._tables = {
            label: {k: _copy_value(v) for k, v in tbl.items()}
            for label, tbl in tables.items()
        }
        return memo

    # -- introspection ---------------------------------------------------

    def items(self, label: str) -> Iterator[Tuple[Hashable, Any]]:
        """Iterate the (key, value) records of one label."""
        return iter(self.table(label).items())

    def labels(self) -> List[str]:
        """All labels this query has written."""
        return list(self._tables)

    def record_count(self) -> int:
        """Total records across all labels."""
        return sum(len(tbl) for tbl in self._tables.values())

    def approx_bytes(self) -> int:
        """Modelled memory footprint of this query's records.

        A fixed cost per record plus a per-element cost for list-valued
        records (join build sides), so the memo-byte budget sees the
        hash-table growth that actually threatens partition memory. An
        estimate, not ``sys.getsizeof`` — the budget enforces an order of
        magnitude, not an allocator-exact figure.
        """
        total = 0
        for tbl in self._tables.values():
            total += BYTES_PER_RECORD * len(tbl)
            for value in tbl.values():
                if type(value) is list:
                    total += BYTES_PER_LIST_ELEMENT * len(value)
        return total

    @property
    def op_count(self) -> int:
        """Number of memo operations performed (for cost accounting)."""
        return self._op_count


class MemoStore:
    """One partition's memo store ``M_p``: query-id → :class:`QueryMemo`.

    Records are created lazily per query and destroyed when the query
    terminates — the paper's "lifetime bound to some specific query".
    """

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self._memos: Dict[int, QueryMemo] = {}

    def for_query(self, query_id: int) -> QueryMemo:
        """The query's memo, created on first access."""
        memo = self._memos.get(query_id)
        if memo is None:
            memo = QueryMemo()
            self._memos[query_id] = memo
        return memo

    def peek(self, query_id: int) -> Optional[QueryMemo]:
        """The query's memo if it exists, without creating one."""
        return self._memos.get(query_id)

    def clear_query(self, query_id: int) -> None:
        """Drop all memo records of a terminated query."""
        self._memos.pop(query_id, None)

    def install(self, query_id: int, memo: QueryMemo) -> None:
        """Install a rebuilt memo for a query (checkpoint restore).

        Replaces whatever the query currently holds here: a restore rolls
        the shard back to the checkpointed stage boundary, so any records
        written after the snapshot must vanish (docs/RECOVERY.md).
        """
        self._memos[query_id] = memo

    def active_queries(self) -> List[int]:
        """Ids of queries holding memo records here."""
        return list(self._memos)

    def bytes_of(self, query_id: int) -> int:
        """Modelled memo bytes one query holds here (0 when absent)."""
        memo = self._memos.get(query_id)
        return 0 if memo is None else memo.approx_bytes()

    def invalidate_all(self) -> List[int]:
        """Drop *every* query's records, returning the affected query ids.

        Models the memory loss of a worker crash under fault injection: the
        partition's entire ``M_p`` vanishes at once. The returned ids let
        the engine force-retry the affected queries — memo loss (unlike
        traverser loss) carries no progression weight, so without an
        explicit retry a query could terminate "successfully" with wrong
        results (e.g. a Dedup set forgetting what it has seen). See
        docs/FAULTS.md.
        """
        affected = list(self._memos)
        self._memos.clear()
        return affected

    def require(self, query_id: int) -> QueryMemo:
        """The query's memo; raises MemoError if absent."""
        memo = self._memos.get(query_id)
        if memo is None:
            raise MemoError(
                f"query {query_id} has no memo records in partition {self.pid}"
            )
        return memo
