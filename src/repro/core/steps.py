"""Physical operators of the partitioned stateful traversal machine.

A compiled query is a :class:`~repro.query.plan.PhysicalPlan`: a flat list of
:class:`PhysicalOp` instances plus stage metadata. Every engine (async PSTM,
BSP, the baseline variants) executes the *same* operators; only scheduling,
state placement, and communication differ.

The operator contract:

* :meth:`PhysicalOp.routing` — where must a traverser be to execute this op?
  ``None`` means "anywhere" (stateless or partition-local by construction);
  otherwise the partition id, computed from the traverser alone (the paper's
  ``h_ψ``). The engine moves traversers whose next op routes elsewhere.
* :meth:`PhysicalOp.apply` — execute the op for one traverser against the
  local partition (:class:`StepContext`), producing a :class:`StepOutcome`:
  zero or more children and a cost record. A traverser with zero children is
  *finished* and its progression weight is reported.
* Aggregation ops (:attr:`PhysicalOp.is_barrier` true) absorb traversers into
  partition-local memo partials; when the stage's weight ledger completes,
  the engine calls :meth:`AggregateOp.partial` / :meth:`AggregateOp.combine`
  / :meth:`AggregateOp.finalize` (or :meth:`AggregateOp.reseed` for
  mid-plan aggregations, the paper's Fig 6 subqueries).

Operator costs are reported as event counts (:class:`OpCost`); the runtime's
cost model converts them into simulated time, so the same operators can be
priced under different hardware profiles (paper Fig 13).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.memo import QueryMemo
from repro.core.traverser import Traverser
from repro.errors import CompilationError, ExecutionError
from repro.graph.partition import HashPartitioner, PartitionStore
from repro.graph.property_graph import BOTH, IN, OUT


class StepContext:
    """Partition-local world view handed to an operator.

    Wraps the partition's graph store and the executing query's memo, plus
    query parameters. A traverser only ever sees the partition it is on —
    the shared-nothing discipline of §IV.
    """

    __slots__ = ("store", "memo", "partitioner", "params", "pid")

    def __init__(
        self,
        store: PartitionStore,
        memo: QueryMemo,
        partitioner: HashPartitioner,
        params: Dict[str, Any],
    ) -> None:
        self.store = store
        self.memo = memo
        self.partitioner = partitioner
        self.params = params
        self.pid = store.pid

    def vertex_prop(self, vid: int, key: str, default: Any = None) -> Any:
        """A property of a locally-owned vertex."""
        return self.store.get_vertex_property(vid, key, default)

    def vertex_label(self, vid: int) -> str:
        """The label of a locally-owned vertex."""
        return self.store.vertex_label(vid)

    def param(self, name: str) -> Any:
        """A query parameter (raises if missing)."""
        try:
            return self.params[name]
        except KeyError:
            raise ExecutionError(f"missing query parameter: {name!r}") from None


class OpCost:
    """Event counts for one operator application (priced by the cost model).

    A hand-rolled ``__slots__`` class: one is allocated per traverser step,
    which is the simulation's hottest allocation site.
    """

    __slots__ = ("base", "edges", "memo_ops", "props")

    def __init__(
        self, base: int = 1, edges: int = 0, memo_ops: int = 0, props: int = 0
    ) -> None:
        self.base = base
        self.edges = edges
        self.memo_ops = memo_ops
        self.props = props

    def add(self, other: "OpCost") -> None:
        """Accumulate another cost record into this one."""
        self.base += other.base
        self.edges += other.edges
        self.memo_ops += other.memo_ops
        self.props += other.props

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OpCost(base={self.base}, edges={self.edges}, "
            f"memo_ops={self.memo_ops}, props={self.props})"
        )


class StepOutcome:
    """Children and cost produced by one operator application.

    Children are recorded as ``(vertex, op_idx, payload, loops)`` tuples;
    the machine assigns split weights and materializes traversers.
    """

    __slots__ = ("children", "cost")

    def __init__(self) -> None:
        self.children: List[Tuple[int, int, Tuple[Any, ...], int]] = []
        self.cost = OpCost()

    def child(
        self, vertex: int, op_idx: int, payload: Tuple[Any, ...], loops: int = 0
    ) -> None:
        """Record one child traverser spec."""
        self.children.append((vertex, op_idx, payload, loops))


#: One child traverser spec: ``(vertex, op_idx, payload, loops)``.
ChildSpec = Tuple[int, int, Tuple[Any, ...], int]

#: Shared empty cost tuple / children row for batch kernels.
_NO_CHILDREN: List[ChildSpec] = []

#: Shared ``(base, edges, memo_ops, props)`` tuples for small expansion
#: degrees. Reusing one tuple object per degree lets batched callers
#: detect repeated costs by identity instead of recomputing the price.
_EXPAND_COSTS: List[Tuple[int, int, int, int]] = [
    (1, d, 0, 0) for d in range(128)
]

#: Sentinel distinguishing "no partial yet" from a stored ``None`` partial.
_MISSING = object()


class BatchOutcome:
    """Result of applying one operator to a homogeneous run of traversers.

    Parallel lists, one entry per input traverser:

    * ``children[i]`` — child specs of traverser ``i`` (may be empty);
    * ``costs[i]`` — ``(base, edges, memo_ops, props)`` event counts, the
      same numbers the scalar path would have put in an :class:`OpCost`.

    Costs are plain tuples rather than :class:`OpCost` instances because the
    batch path exists to avoid per-traverser allocations; the runtime prices
    the tuples with the identical arithmetic
    (:meth:`~repro.runtime.costmodel.CostModel.op_cost_fields_us`), so
    simulated times match the scalar path bit for bit.
    """

    __slots__ = ("children", "costs")

    def __init__(
        self,
        children: List[List[ChildSpec]],
        costs: List[Tuple[int, int, int, int]],
    ) -> None:
        self.children = children
        self.costs = costs


#: Expression: a function of (context, traverser) producing a value.
Expr = Callable[[StepContext, Traverser], Any]
#: Predicate: a function of (context, traverser) producing a bool.
Predicate = Callable[[StepContext, Traverser], bool]
#: Traverser-only key function (must not touch the context — used for routing).
KeyFn = Callable[[Traverser], Hashable]


class PhysicalOp:
    """Base class of all physical operators."""

    #: True for aggregation barriers (stage boundaries).
    is_barrier: bool = False
    #: True for source ops seeded once per partition by the engine.
    is_source: bool = False
    #: How :meth:`routing` behaves, so batch kernels can route children
    #: without a per-child method call: ``"free"`` (always ``None``),
    #: ``"vertex"`` (always ``partitioner(trav.vertex)``), or ``"custom"``
    #: (call :meth:`routing`). Must be consistent with :meth:`routing`.
    routing_mode: str = "free"

    def __init__(self, name: str) -> None:
        self.name = name
        self.idx: int = -1  # assigned by the plan
        self.next_idx: int = -1  # default successor, assigned by the compiler
        self.stage: int = 0  # stage this op belongs to

    def routing(self, partitioner: HashPartitioner, trav: Traverser) -> Optional[int]:
        """Partition where ``trav`` must run this op (``h_ψ``), or None."""
        return None

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        raise NotImplementedError

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        """Execute this op for a homogeneous run of traversers.

        The default implementation falls back to :meth:`apply` per
        traverser, so every operator is batch-executable; hot operators
        override this with kernels that amortize lookups and skip the
        per-traverser :class:`StepOutcome`/:class:`OpCost` allocations.

        Implementations must be *observationally identical* to the scalar
        path: same children in the same order, same per-traverser event
        counts, same memo access sequence.
        """
        children: List[List[ChildSpec]] = []
        costs: List[Tuple[int, int, int, int]] = []
        apply = self.apply
        for trav in travs:
            out = apply(ctx, trav)
            children.append(out.children)
            c = out.cost
            costs.append((c.base, c.edges, c.memo_ops, c.props))
        return BatchOutcome(children, costs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} #{self.idx} {self.name!r} -> {self.next_idx}>"


class VertexRoutedOp(PhysicalOp):
    """Mixin base for ops that must run where the current vertex lives."""

    routing_mode = "vertex"

    def routing(self, partitioner: HashPartitioner, trav: Traverser) -> Optional[int]:
        return partitioner(trav.vertex)


# ---------------------------------------------------------------------------
# source operators
# ---------------------------------------------------------------------------


class SourceOp(PhysicalOp):
    """Base for source ops. Sources are executed by per-partition *seed
    traversers* (vertex = -1) injected by the engine; broadcast sources get
    one seed per partition, routed sources a single seed."""

    is_source = True

    #: True → one seed per partition; False → a single routed seed.
    broadcast: bool = True


class FixedVertexSource(SourceOp):
    """``g.V(id)``: start at one vertex given by a parameter or constant."""

    broadcast = False
    routing_mode = "custom"

    def __init__(self, vertex_param: str, const: Optional[int] = None) -> None:
        super().__init__(f"V(${vertex_param})" if const is None else f"V({const})")
        self.vertex_param = vertex_param
        self.const = const

    def start_vertex(self, params: Dict[str, Any]) -> int:
        """Resolve the start vertex from the query parameters."""
        if self.const is not None:
            return self.const
        value = params.get(self.vertex_param)
        if value is None:
            raise ExecutionError(f"missing start-vertex parameter {self.vertex_param!r}")
        return value

    def routing(self, partitioner: HashPartitioner, trav: Traverser) -> Optional[int]:
        # Seed traversers carry the start vertex already; run where it lives.
        return partitioner(trav.vertex) if trav.vertex >= 0 else None

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        if ctx.store.owns(trav.vertex):
            out.child(trav.vertex, self.next_idx, trav.payload)
        return out


class IndexLookupSource(SourceOp):
    """Index lookup: find vertices with ``label.key == $param`` via the
    per-partition exact-match index (the IndexLookUpStrategy target form)."""

    def __init__(self, label: str, key: str, value_param: str) -> None:
        super().__init__(f"IndexLookup({label}.{key} == ${value_param})")
        self.label = label
        self.key = key
        self.value_param = value_param

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        value = ctx.param(self.value_param)
        matches = ctx.store.index_lookup(self.label, self.key, value)
        out.cost.memo_ops += 1
        for vid in matches:
            out.child(vid, self.next_idx, trav.payload)
        return out


class ScanSource(SourceOp):
    """Full scan of all vertices with a label (no index available)."""

    def __init__(self, label: Optional[str] = None) -> None:
        super().__init__(f"Scan({label or '*'})")
        self.label = label

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        vertices = ctx.store.local_vertices(self.label)
        out.cost.props += len(vertices)
        for vid in vertices:
            out.child(vid, self.next_idx, trav.payload)
        return out


# ---------------------------------------------------------------------------
# traversal operators
# ---------------------------------------------------------------------------


class ExpandOp(VertexRoutedOp):
    """Move along incident edges (Gremlin ``out()`` / ``in()`` / ``both()``).

    Spawns one child per matching edge. Options:

    * ``dist_slot`` — increment a hop-distance payload slot;
    * ``edge_slot`` — bind the traversed edge id into a slot;
    * ``edge_prop`` — ``(property_key, slot)``: bind an edge property (e.g.
      a ``knows`` edge's ``creationDate``) into a slot.
    """

    def __init__(
        self,
        direction: str,
        edge_label: Optional[str] = None,
        dist_slot: Optional[int] = None,
        edge_slot: Optional[int] = None,
        edge_prop: Optional[Tuple[str, int]] = None,
    ) -> None:
        if direction not in (OUT, IN, BOTH):
            raise CompilationError(f"bad expand direction: {direction!r}")
        super().__init__(f"Expand({direction}, {edge_label or '*'})")
        self.direction = direction
        self.edge_label = edge_label
        self.dist_slot = dist_slot
        self.edge_slot = edge_slot
        self.edge_prop = edge_prop

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        payload = trav.payload
        if self.dist_slot is not None:
            dist = payload[self.dist_slot]
            dist = 1 if dist is None else dist + 1
            payload = payload[: self.dist_slot] + (dist,) + payload[self.dist_slot + 1 :]
        if self.edge_slot is None and self.edge_prop is None:
            neighbors = ctx.store.neighbors(trav.vertex, self.direction, self.edge_label)
            out.cost.edges += len(neighbors)
            for nbr in neighbors:
                out.child(nbr, self.next_idx, payload, trav.loops + 1)
            return out
        pairs = ctx.store.edges(trav.vertex, self.direction, self.edge_label)
        out.cost.edges += len(pairs)
        for nbr, eid in pairs:
            p = payload
            if self.edge_slot is not None:
                p = p[: self.edge_slot] + (eid,) + p[self.edge_slot + 1 :]
            if self.edge_prop is not None:
                key, slot = self.edge_prop
                record = ctx.store.edge_record(eid)
                value = record.properties.get(key) if record is not None else None
                p = p[:slot] + (value,) + p[slot + 1 :]
                out.cost.props += 1
            out.child(nbr, self.next_idx, p, trav.loops + 1)
        return out

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        """Batched expansion: one CSR slice per traverser, no per-traverser
        outcome objects. The single-(direction, label) no-binding case reads
        the CSR arrays directly; other shapes share the generic loop over
        :meth:`PartitionStore.neighbors` so child order matches the scalar
        path exactly."""
        if self.edge_slot is not None or self.edge_prop is not None:
            return PhysicalOp.apply_batch(self, ctx, travs)
        children: List[List[ChildSpec]] = []
        costs: List[Tuple[int, int, int, int]] = []
        next_idx = self.next_idx
        dist_slot = self.dist_slot
        store = ctx.store
        direction = self.direction
        label = self.edge_label
        csr = None
        if label is not None and direction != BOTH:
            # Only plain PartitionStores expose raw CSR arrays; snapshot
            # views and other wrapper stores merge deltas in neighbors(),
            # so they must take the generic path below.
            adjacency = getattr(store, "adjacency", None)
            if adjacency is not None:
                csr = adjacency(direction, label)
        if csr is not None:
            local_ix = store.local_index_map()
            offsets, targets = csr.arrays()
            cappend = children.append
            costappend = costs.append
            cost_cache = _EXPAND_COSTS
            n_cached = len(cost_cache)
            for trav in travs:
                payload = trav.payload
                if dist_slot is not None:
                    dist = payload[dist_slot]
                    dist = 1 if dist is None else dist + 1
                    payload = (
                        payload[:dist_slot] + (dist,) + payload[dist_slot + 1 :]
                    )
                li = local_ix[trav.vertex]
                lo = offsets[li]
                hi = offsets[li + 1]
                deg = hi - lo
                loops = trav.loops + 1
                # Degree-specialized rows: power-law graphs make degree 0/1
                # the common case, where slice + listcomp overhead dominates.
                if deg == 1:
                    cappend([(targets[lo], next_idx, payload, loops)])
                elif deg == 0:
                    cappend(_NO_CHILDREN)
                else:
                    cappend(
                        [
                            (nbr, next_idx, payload, loops)
                            for nbr in targets[lo:hi]
                        ]
                    )
                # Shared small-degree cost tuples let the worker's identity
                # fast path hit when consecutive traversers share a degree.
                costappend(
                    cost_cache[deg] if deg < n_cached else (1, deg, 0, 0)
                )
            return BatchOutcome(children, costs)
        neighbors = store.neighbors
        for trav in travs:
            payload = trav.payload
            if dist_slot is not None:
                dist = payload[dist_slot]
                dist = 1 if dist is None else dist + 1
                payload = payload[:dist_slot] + (dist,) + payload[dist_slot + 1 :]
            nbrs = neighbors(trav.vertex, direction, label)
            loops = trav.loops + 1
            children.append([(nbr, next_idx, payload, loops) for nbr in nbrs])
            costs.append((1, len(nbrs), 0, 0))
        return BatchOutcome(children, costs)


class GotoOp(PhysicalOp):
    """Relocate the traverser to a vertex held in a payload slot.

    Used after joins: the join runs at the key's partition, and the
    continuation often needs to resume at a vertex bound earlier (e.g. the
    matched post of Fig 3). Location-free: the next op's routing moves the
    traverser to the right partition.
    """

    def __init__(self, slot: int, name: str = "goto") -> None:
        super().__init__(f"Goto({name})")
        self.slot = slot

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        vertex = trav.payload[self.slot]
        if vertex is None:
            raise ExecutionError(f"{self.name}: binding slot {self.slot} is unset")
        out.child(vertex, self.next_idx, trav.payload, trav.loops)
        return out

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        children: List[List[ChildSpec]] = []
        slot = self.slot
        next_idx = self.next_idx
        for trav in travs:
            vertex = trav.payload[slot]
            if vertex is None:
                raise ExecutionError(f"{self.name}: binding slot {slot} is unset")
            children.append([(vertex, next_idx, trav.payload, trav.loops)])
        return BatchOutcome(children, [(1, 0, 0, 0)] * len(travs))


class FilterOp(VertexRoutedOp):
    """Keep traversers satisfying a predicate (Gremlin ``has`` / ``where``).

    ``needs_vertex=False`` marks predicates that only read the payload and
    parameters; those can run anywhere, avoiding a routing hop.
    """

    def __init__(self, predicate: Predicate, name: str, needs_vertex: bool = True) -> None:
        super().__init__(f"Filter({name})")
        self.predicate = predicate
        self.needs_vertex = needs_vertex
        self.routing_mode = "vertex" if needs_vertex else "free"

    def routing(self, partitioner: HashPartitioner, trav: Traverser) -> Optional[int]:
        if not self.needs_vertex:
            return None
        return partitioner(trav.vertex)

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        out.cost.props += 1
        if self.predicate(ctx, trav):
            out.child(trav.vertex, self.next_idx, trav.payload, trav.loops)
        return out

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        children: List[List[ChildSpec]] = []
        predicate = self.predicate
        next_idx = self.next_idx
        for trav in travs:
            if predicate(ctx, trav):
                children.append([(trav.vertex, next_idx, trav.payload, trav.loops)])
            else:
                children.append(_NO_CHILDREN)
        return BatchOutcome(children, [(1, 0, 0, 1)] * len(travs))


class ProjectOp(VertexRoutedOp):
    """Evaluate expressions into payload slots (Gremlin ``values``/``as``)."""

    def __init__(
        self,
        assignments: Sequence[Tuple[int, Expr]],
        name: str = "project",
        needs_vertex: bool = True,
    ) -> None:
        super().__init__(f"Project({name})")
        self.assignments = list(assignments)
        self.needs_vertex = needs_vertex
        self.routing_mode = "vertex" if needs_vertex else "free"

    def routing(self, partitioner: HashPartitioner, trav: Traverser) -> Optional[int]:
        if not self.needs_vertex:
            return None
        return partitioner(trav.vertex)

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        payload = list(trav.payload)
        for slot, expr in self.assignments:
            payload[slot] = expr(ctx, trav)
            out.cost.props += 1
        out.child(trav.vertex, self.next_idx, tuple(payload), trav.loops)
        return out

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        children: List[List[ChildSpec]] = []
        assignments = self.assignments
        next_idx = self.next_idx
        for trav in travs:
            payload = list(trav.payload)
            for slot, expr in assignments:
                payload[slot] = expr(ctx, trav)
            children.append([(trav.vertex, next_idx, tuple(payload), trav.loops)])
        return BatchOutcome(children, [(1, 0, 0, len(assignments))] * len(travs))


class DedupOp(PhysicalOp):
    """Incremental deduplication via a memo set (§III-A).

    Routed by the hash of the dedup key (``h_Dedup``), so each partition sees
    every occurrence of the keys it owns: the partitionable property makes
    the memo set complete without any global synchronization. The first
    traverser with a given key passes; later ones finish.
    """

    routing_mode = "custom"

    def __init__(
        self,
        key_fn: Optional[KeyFn] = None,
        memo_label: str = "__dedup__",
        name: str = "dedup",
    ) -> None:
        super().__init__(f"Dedup({name})")
        self.key_fn = key_fn or (lambda trav: trav.vertex)
        self.memo_label = memo_label
        if key_fn is None:
            # The default routing key IS the vertex: key_partition(v) and
            # the vertex partition function compute the same mix64 hash, so
            # vertex-mode routing yields identical partition ids and lets
            # the batched path use the memoized vertex→pid cache.
            self.routing_mode = "vertex"

    def routing(self, partitioner: HashPartitioner, trav: Traverser) -> Optional[int]:
        return partitioner.key_partition(self.key_fn(trav))

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        out.cost.memo_ops += 1
        if ctx.memo.insert_if_absent(self.memo_label, self.key_fn(trav)):
            out.child(trav.vertex, self.next_idx, trav.payload, trav.loops)
        return out

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        children: List[List[ChildSpec]] = []
        append = children.append
        key_fn = self.key_fn
        # Inlined memo.insert_if_absent: one table fetch per run.
        tbl = ctx.memo.table(self.memo_label)
        next_idx = self.next_idx
        for trav in travs:
            key = key_fn(trav)
            if key in tbl:
                append(_NO_CHILDREN)
            else:
                tbl[key] = True
                append([(trav.vertex, next_idx, trav.payload, trav.loops)])
        return BatchOutcome(children, [(1, 0, 1, 0)] * len(travs))


class MinDistBranchOp(VertexRoutedOp):
    """The k-hop memo-pruning branch (paper Fig 4c / Fig 5).

    On arrival at vertex ``v`` with traversed distance ``d`` (a payload
    slot), consult the partition memo record ``M[Distance, v]``:

    * if a previous traverser reached ``v`` with distance ≤ ``d``, this
      traverser cannot discover anything new — prune (finish);
    * otherwise record ``d`` and branch: one child proceeds to the rest of
      the plan (``exit_idx`` — this vertex is a k-hop result), and, when
      ``d < max_dist``, a second child continues the expansion loop
      (``loop_idx``).

    The memo guarantees each vertex record is updated at most ``max_dist``
    times, bounding the traversal at O(k·|E|) — the paper's combinatorial
    explosion defense.
    """

    def __init__(
        self,
        dist_slot: int,
        max_dist: int,
        memo_label: str = "Distance",
    ) -> None:
        super().__init__(f"MinDistBranch(k={max_dist})")
        self.dist_slot = dist_slot
        self.max_dist = max_dist
        self.memo_label = memo_label
        self.loop_idx: int = -1  # assigned by the compiler
        self.exit_idx: int = -1  # assigned by the compiler

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        out.cost.memo_ops += 1
        dist = trav.payload[self.dist_slot]
        if not ctx.memo.put_if_less(self.memo_label, trav.vertex, dist):
            return out  # pruned: an earlier traverser got here no later
        out.child(trav.vertex, self.exit_idx, trav.payload, trav.loops)
        if dist < self.max_dist:
            out.child(trav.vertex, self.loop_idx, trav.payload, trav.loops)
        return out

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        children: List[List[ChildSpec]] = []
        append = children.append
        # Inlined memo.put_if_less: one table fetch per run.
        tbl = ctx.memo.table(self.memo_label)
        tbl_get = tbl.get
        dist_slot = self.dist_slot
        max_dist = self.max_dist
        exit_idx = self.exit_idx
        loop_idx = self.loop_idx
        for trav in travs:
            dist = trav.payload[dist_slot]
            vertex = trav.vertex
            old = tbl_get(vertex)
            if old is not None and dist >= old:
                append(_NO_CHILDREN)
                continue
            tbl[vertex] = dist
            if dist < max_dist:
                append(
                    [
                        (vertex, exit_idx, trav.payload, trav.loops),
                        (vertex, loop_idx, trav.payload, trav.loops),
                    ]
                )
            else:
                append([(vertex, exit_idx, trav.payload, trav.loops)])
        return BatchOutcome(children, [(1, 0, 1, 0)] * len(travs))


class ForkOp(PhysicalOp):
    """Clone the traverser onto several branch entry points (``union``)."""

    def __init__(self, name: str = "union") -> None:
        super().__init__(f"Fork({name})")
        self.targets: List[int] = []  # assigned by the compiler

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        for target in self.targets:
            out.child(trav.vertex, target, trav.payload, trav.loops)
        return out

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        targets = self.targets
        children = [
            [(trav.vertex, target, trav.payload, trav.loops) for target in targets]
            for trav in travs
        ]
        return BatchOutcome(children, [(1, 0, 0, 0)] * len(travs))


class JumpOp(PhysicalOp):
    """Unconditional jump (branch convergence point plumbing)."""

    def __init__(self, name: str = "jump") -> None:
        super().__init__(f"Jump({name})")

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        out.cost.base = 0  # pure plumbing: free
        out.child(trav.vertex, self.next_idx, trav.payload, trav.loops)
        return out

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        next_idx = self.next_idx
        children = [
            [(trav.vertex, next_idx, trav.payload, trav.loops)] for trav in travs
        ]
        return BatchOutcome(children, [(0, 0, 0, 0)] * len(travs))


class JoinOp(PhysicalOp):
    """Double-pipelined hash join (paper §III-A, Fig 3).

    Two plan branches (sides ``"A"`` and ``"B"``) converge at the same
    logical join, identified by ``join_label``. Each arriving traverser:

    1. inserts its payload into its own side's memo hash table at its join
       key, then
    2. probes the opposite side's table and spawns one child per match,
       with payloads merged A-side-first.

    Routing by the join key's hash makes the join partitionable: every
    traverser with key ``k`` meets at partition ``H(k)``, so matches are
    found exactly once, incrementally, with no barrier.
    """

    routing_mode = "custom"

    def __init__(
        self,
        join_label: str,
        side: str,
        key_fn: KeyFn,
        merge_fn: Callable[[Tuple[Any, ...], Tuple[Any, ...]], Tuple[Any, ...]],
    ) -> None:
        if side not in ("A", "B"):
            raise CompilationError(f"join side must be 'A' or 'B', got {side!r}")
        super().__init__(f"Join({join_label}:{side})")
        self.join_label = join_label
        self.side = side
        self.key_fn = key_fn
        self.merge_fn = merge_fn

    def routing(self, partitioner: HashPartitioner, trav: Traverser) -> Optional[int]:
        return partitioner.key_partition(self.key_fn(trav))

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        key = self.key_fn(trav)
        own = f"{self.join_label}/{self.side}"
        other = f"{self.join_label}/{'B' if self.side == 'A' else 'A'}"
        ctx.memo.append(own, key, trav.payload)
        matches = ctx.memo.get_list(other, key)
        out.cost.memo_ops += 2
        for other_payload in matches:
            if self.side == "A":
                merged = self.merge_fn(trav.payload, other_payload)
            else:
                merged = self.merge_fn(other_payload, trav.payload)
            out.child(trav.vertex, self.next_idx, merged, trav.loops)
        return out

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        key_fn = self.key_fn
        merge_fn = self.merge_fn
        next_idx = self.next_idx
        a_side = self.side == "A"
        own = f"{self.join_label}/{self.side}"
        other = f"{self.join_label}/{'B' if a_side else 'A'}"
        memo_append = ctx.memo.append
        memo_get_list = ctx.memo.get_list
        children: List[List[ChildSpec]] = []
        for trav in travs:
            key = key_fn(trav)
            payload = trav.payload
            memo_append(own, key, payload)
            matches = memo_get_list(other, key)
            if matches:
                vertex = trav.vertex
                loops = trav.loops
                if a_side:
                    children.append(
                        [(vertex, next_idx, merge_fn(payload, m), loops) for m in matches]
                    )
                else:
                    children.append(
                        [(vertex, next_idx, merge_fn(m, payload), loops) for m in matches]
                    )
            else:
                children.append(_NO_CHILDREN)
        return BatchOutcome(children, [(1, 0, 2, 0)] * len(travs))


# ---------------------------------------------------------------------------
# aggregation operators (stage barriers)
# ---------------------------------------------------------------------------


class AggregateOp(PhysicalOp):
    """Base class for aggregation barriers (paper §III-C, Fig 6).

    ``apply`` folds the traverser into a partition-local partial stored in
    the memo (commutative + associative, hence partitionable); the traverser
    then finishes. When the stage's weight ledger completes, the engine
    gathers partials (:meth:`partial`), merges them (:meth:`combine`), and
    either produces final rows (:meth:`finalize`) or seeds the next stage
    (:meth:`reseed`).
    """

    is_barrier = True

    #: memo label prefix for partials
    MEMO = "__agg__"

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def memo_label(self) -> str:
        """The memo label this barrier's partials live under."""
        return f"{self.MEMO}{self.idx}"

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        out.cost.memo_ops += 1
        self.absorb(ctx, trav)
        return out  # no children: the traverser's weight is finished

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        absorb = self.absorb
        for trav in travs:
            absorb(ctx, trav)
        n = len(travs)
        return BatchOutcome([_NO_CHILDREN] * n, [(1, 0, 1, 0)] * n)

    # subclass API ------------------------------------------------------

    def absorb(self, ctx: StepContext, trav: Traverser) -> None:
        """Fold one traverser into the partition-local partial."""
        raise NotImplementedError

    def partial(self, memo: QueryMemo) -> Any:
        """This partition's partial (None when nothing was absorbed)."""
        return memo.get(self.memo_label(), "partial")

    def combine(self, partials: List[Any]) -> Any:
        """Merge partition partials into the global aggregate."""
        raise NotImplementedError

    def finalize(self, combined: Any) -> List[Any]:
        """Final result rows for an end-of-plan barrier."""
        raise NotImplementedError

    def reseed(self, combined: Any) -> List[Tuple[int, Tuple[Any, ...]]]:
        """Seeds ``(vertex, payload)`` for the next stage (mid-plan barrier)."""
        raise ExecutionError(f"{self.name} cannot reseed a next stage")

    def estimated_partial_size(self, partial: Any) -> int:
        """Wire-size estimate of a partial for the gather cost model."""
        if partial is None:
            return 8
        if isinstance(partial, (int, float)):
            return 8
        if isinstance(partial, dict):
            return 16 * max(len(partial), 1)
        if isinstance(partial, list):
            return 24 * max(len(partial), 1)
        return 16


class CountAgg(AggregateOp):
    """``count()``: one global counter."""

    def __init__(self) -> None:
        super().__init__("Count")

    def absorb(self, ctx: StepContext, trav: Traverser) -> None:
        """Fold one traverser into the partition-local partial."""
        ctx.memo.accumulate(self.memo_label(), "partial", 1, lambda a, b: a + b)

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        n = len(travs)
        tbl = ctx.memo.table(self.memo_label())
        tbl["partial"] = tbl.get("partial", 0) + n
        return BatchOutcome([_NO_CHILDREN] * n, [(1, 0, 1, 0)] * n)

    def combine(self, partials: List[Any]) -> int:
        """Merge partition partials into the global aggregate."""
        return sum(p for p in partials if p is not None)

    def finalize(self, combined: int) -> List[Any]:
        return [combined]

    def reseed(self, combined: int) -> List[Tuple[int, Tuple[Any, ...]]]:
        return [(-1, (combined,))]


class SumAgg(AggregateOp):
    """``sum(expr)`` over a payload slot."""

    def __init__(self, value_slot: int) -> None:
        super().__init__("Sum")
        self.value_slot = value_slot

    def absorb(self, ctx: StepContext, trav: Traverser) -> None:
        """Fold one traverser into the partition-local partial."""
        value = trav.payload[self.value_slot]
        ctx.memo.accumulate(self.memo_label(), "partial", value, lambda a, b: a + b)

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        n = len(travs)
        tbl = ctx.memo.table(self.memo_label())
        slot = self.value_slot
        # Fold left-to-right from the stored partial, matching the scalar
        # accumulate sequence (float addition is order-sensitive).
        part = tbl.get("partial", _MISSING)
        for trav in travs:
            value = trav.payload[slot]
            part = value if part is _MISSING else part + value
        tbl["partial"] = part
        return BatchOutcome([_NO_CHILDREN] * n, [(1, 0, 1, 0)] * n)

    def combine(self, partials: List[Any]) -> Any:
        """Merge partition partials into the global aggregate."""
        total = 0
        for p in partials:
            if p is not None:
                total += p
        return total

    def finalize(self, combined: Any) -> List[Any]:
        return [combined]


class MaxAgg(AggregateOp):
    """``max(expr)`` over a payload slot."""

    def __init__(self, value_slot: int) -> None:
        super().__init__("Max")
        self.value_slot = value_slot

    def absorb(self, ctx: StepContext, trav: Traverser) -> None:
        """Fold one traverser into the partition-local partial."""
        value = trav.payload[self.value_slot]
        ctx.memo.accumulate(self.memo_label(), "partial", value, max)

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        n = len(travs)
        tbl = ctx.memo.table(self.memo_label())
        slot = self.value_slot
        part = tbl.get("partial", _MISSING)
        for trav in travs:
            value = trav.payload[slot]
            part = value if part is _MISSING else max(part, value)
        tbl["partial"] = part
        return BatchOutcome([_NO_CHILDREN] * n, [(1, 0, 1, 0)] * n)

    def combine(self, partials: List[Any]) -> Any:
        """Merge partition partials into the global aggregate."""
        values = [p for p in partials if p is not None]
        return max(values) if values else None

    def finalize(self, combined: Any) -> List[Any]:
        return [combined]


class MinAgg(AggregateOp):
    """``min(expr)`` over a payload slot."""

    def __init__(self, value_slot: int) -> None:
        super().__init__("Min")
        self.value_slot = value_slot

    def absorb(self, ctx: StepContext, trav: Traverser) -> None:
        """Fold one traverser into the partition-local partial."""
        value = trav.payload[self.value_slot]
        ctx.memo.accumulate(self.memo_label(), "partial", value, min)

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        n = len(travs)
        tbl = ctx.memo.table(self.memo_label())
        slot = self.value_slot
        part = tbl.get("partial", _MISSING)
        for trav in travs:
            value = trav.payload[slot]
            part = value if part is _MISSING else min(part, value)
        tbl["partial"] = part
        return BatchOutcome([_NO_CHILDREN] * n, [(1, 0, 1, 0)] * n)

    def combine(self, partials: List[Any]) -> Any:
        """Merge partition partials into the global aggregate."""
        values = [p for p in partials if p is not None]
        return min(values) if values else None

    def finalize(self, combined: Any) -> List[Any]:
        return [combined]


class TopKAgg(AggregateOp):
    """``order().limit(k)`` with bounded partition-local heaps.

    Each partition keeps only its local top-``k`` rows (a size-``k`` heap),
    so the gather ships at most ``k`` rows per partition — the distributed
    result aggregation the paper contrasts with centralized collection.

    ``sort_key`` maps a traverser to a sortable key; ``ascending`` orders the
    final output. The row shipped is ``row_fn(trav)`` (defaults to the
    payload).
    """

    def __init__(
        self,
        k: int,
        sort_key: KeyFn,
        row_fn: Optional[Callable[[Traverser], Any]] = None,
        ascending: bool = True,
    ) -> None:
        super().__init__(f"TopK({k})")
        if k < 1:
            raise CompilationError(f"top-k requires k >= 1, got {k}")
        self.k = k
        self.sort_key = sort_key
        self.row_fn = row_fn or (lambda trav: trav.payload)
        self.ascending = ascending

    def absorb(self, ctx: StepContext, trav: Traverser) -> None:
        """Fold one traverser into the partition-local partial."""
        label = self.memo_label()
        partial = ctx.memo.get(label, "partial")
        if partial is None:
            partial = {"n": 0, "heap": []}
            ctx.memo.put(label, "partial", partial)
        partial["n"] += 1
        heap = partial["heap"]
        # Deterministic tiebreak so equal sort keys never compare rows.
        entry = (self.sort_key(trav), partial["n"], self.row_fn(trav))
        # Keep the k smallest (ascending) or k largest (descending) using a
        # bounded heap; Python's heapq is a min-heap, so invert for smallest.
        if self.ascending:
            heapq.heappush(heap, _neg_entry3(entry))
        else:
            heapq.heappush(heap, entry)
        if len(heap) > self.k:
            heapq.heappop(heap)

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        n = len(travs)
        memo = ctx.memo
        label = self.memo_label()
        partial = memo.get(label, "partial")
        if partial is None:
            partial = {"n": 0, "heap": []}
            memo.put(label, "partial", partial)
        heap = partial["heap"]
        count = partial["n"]
        sort_key = self.sort_key
        row_fn = self.row_fn
        ascending = self.ascending
        k = self.k
        push = heapq.heappush
        pop = heapq.heappop
        # Tied sort keys resolve by the heap's internal list order, so the
        # push/pop sequence must match absorb() exactly (no heappushpop).
        for trav in travs:
            count += 1
            entry = (sort_key(trav), count, row_fn(trav))
            push(heap, _neg_entry3(entry) if ascending else entry)
            if len(heap) > k:
                pop(heap)
        partial["n"] = count
        return BatchOutcome([_NO_CHILDREN] * n, [(1, 0, 1, 0)] * n)

    def combine(self, partials: List[Any]) -> List[Tuple[Any, Any]]:
        """Merge partition partials into the global aggregate."""
        entries: List[Tuple[Any, Any]] = []
        for p in partials:
            if not p:
                continue
            for entry in p["heap"]:
                key = entry[0].key if isinstance(entry[0], _NegKey) else entry[0]
                entries.append((key, entry[2]))
        entries.sort(key=lambda e: e[0], reverse=not self.ascending)
        return entries[: self.k]

    def finalize(self, combined: List[Tuple[Any, Any]]) -> List[Any]:
        return [row for _key, row in combined]

    def reseed(self, combined: List[Tuple[Any, Any]]) -> List[Tuple[int, Tuple[Any, ...]]]:
        seeds = []
        for _key, row in combined:
            payload = row if isinstance(row, tuple) else (row,)
            seeds.append((-1, payload))
        return seeds


class _NegKey:
    """Wrapper inverting comparison order (for bounded max-heaps)."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_NegKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: "_NegKey") -> bool:
        # Heap entries and sort keys are homogeneous per aggregate label,
        # so the operand is always another _NegKey; this comparison is hot
        # enough (every tuple compare starts with ==) to skip isinstance.
        return other.key == self.key


class GroupCountAgg(AggregateOp):
    """``groupCount(key)``: per-key counters merged across partitions.

    ``limit`` truncates the finalized (count-desc, key-asc) output — the
    "top N groups" shape of several LDBC IC queries.
    """

    def __init__(self, key_fn: KeyFn, limit: Optional[int] = None) -> None:
        super().__init__("GroupCount")
        self.key_fn = key_fn
        self.limit = limit

    def absorb(self, ctx: StepContext, trav: Traverser) -> None:
        """Fold one traverser into the partition-local partial."""
        label = self.memo_label()
        partial = ctx.memo.get(label, "partial")
        if partial is None:
            partial = {}
            ctx.memo.put(label, "partial", partial)
        key = self.key_fn(trav)
        partial[key] = partial.get(key, 0) + 1

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        n = len(travs)
        memo = ctx.memo
        label = self.memo_label()
        partial = memo.get(label, "partial")
        if partial is None:
            partial = {}
            memo.put(label, "partial", partial)
        key_fn = self.key_fn
        get = partial.get
        for trav in travs:
            key = key_fn(trav)
            partial[key] = get(key, 0) + 1
        return BatchOutcome([_NO_CHILDREN] * n, [(1, 0, 1, 0)] * n)

    def combine(self, partials: List[Any]) -> Dict[Any, int]:
        """Merge partition partials into the global aggregate."""
        merged: Dict[Any, int] = {}
        for p in partials:
            if not p:
                continue
            for key, count in p.items():
                merged[key] = merged.get(key, 0) + count
        return merged

    def finalize(self, combined: Dict[Any, int]) -> List[Any]:
        ordered = sorted(combined.items(), key=lambda kv: (-kv[1], kv[0]))
        if self.limit is not None:
            ordered = ordered[: self.limit]
        return ordered

    def reseed(self, combined: Dict[Any, int]) -> List[Tuple[int, Tuple[Any, ...]]]:
        return [(key if isinstance(key, int) else -1, (key, count))
                for key, count in combined.items()]


class CollectAgg(AggregateOp):
    """Collect result rows, optionally ordered and limited.

    The default end-of-plan barrier: the compiler appends one when a query
    does not end in an explicit aggregation. Partition-local partials are
    row lists (bounded at ``limit`` when an order key is given, via the same
    bounded-heap trick as :class:`TopKAgg`).
    """

    def __init__(
        self,
        row_fn: Optional[Callable[[Traverser], Any]] = None,
        order_key: Optional[Callable[[Any], Any]] = None,
        ascending: bool = True,
        limit: Optional[int] = None,
        unique_order: bool = False,
    ) -> None:
        super().__init__("Collect")
        self.row_fn = row_fn or (lambda trav: trav.payload)
        self.order_key = order_key
        self.ascending = ascending
        self.limit = limit
        #: declared by the query (``order_by(..., unique=True)``): the
        #: order key is a total order over result rows, so :meth:`combine`
        #: is arrival- and partition-order independent. Gates the fusion
        #: pass's distributed top-N pushdown.
        self.unique_order = unique_order

    def _bounded(self) -> bool:
        return self.order_key is not None and self.limit is not None

    def absorb(self, ctx: StepContext, trav: Traverser) -> None:
        """Fold one traverser into the partition-local partial."""
        label = self.memo_label()
        partial = ctx.memo.get(label, "partial")
        if partial is None:
            # Bounded partials are {"n": tiebreak counter, "heap": [...]}
            partial = {"n": 0, "heap": []} if self._bounded() else []
            ctx.memo.put(label, "partial", partial)
        row = self.row_fn(trav)
        if self._bounded():
            partial["n"] += 1
            heap = partial["heap"]
            # Deterministic tiebreak: arrival order within the partition.
            entry = (self.order_key(row), partial["n"], row)
            if self.ascending:
                entry = _neg_entry3(entry)
            if self.unique_order and len(heap) >= self.limit:
                # Total order declared → combine() fully determines the
                # final rows, so the heap's internal layout is
                # unobservable and below-cutoff rows can skip the heap.
                if heap[0] < entry:
                    heapq.heappushpop(heap, entry)
            else:
                heapq.heappush(heap, entry)
                if len(heap) > self.limit:
                    heapq.heappop(heap)
        else:
            partial.append(row)

    def apply_batch(self, ctx: StepContext, travs: Sequence[Traverser]) -> BatchOutcome:
        n = len(travs)
        memo = ctx.memo
        label = self.memo_label()
        bounded = self._bounded()
        partial = memo.get(label, "partial")
        if partial is None:
            partial = {"n": 0, "heap": []} if bounded else []
            memo.put(label, "partial", partial)
        row_fn = self.row_fn
        if bounded:
            heap = partial["heap"]
            count = partial["n"]
            order_key = self.order_key
            ascending = self.ascending
            limit = self.limit
            push = heapq.heappush
            pop = heapq.heappop
            # Same push/pop sequence as absorb(): tied order keys resolve by
            # the heap's internal list order.
            if self.unique_order:
                # Mirror of absorb()'s declared-total-order fast path.
                pushpop = heapq.heappushpop
                for trav in travs:
                    row = row_fn(trav)
                    count += 1
                    entry = (order_key(row), count, row)
                    if ascending:
                        entry = _neg_entry3(entry)
                    if len(heap) < limit:
                        push(heap, entry)
                    elif heap[0] < entry:
                        pushpop(heap, entry)
            else:
                for trav in travs:
                    row = row_fn(trav)
                    count += 1
                    entry = (order_key(row), count, row)
                    push(heap, _neg_entry3(entry) if ascending else entry)
                    if len(heap) > limit:
                        pop(heap)
            partial["n"] = count
        else:
            append = partial.append
            for trav in travs:
                append(row_fn(trav))
        return BatchOutcome([_NO_CHILDREN] * n, [(1, 0, 1, 0)] * n)

    def combine(self, partials: List[Any]) -> List[Any]:
        """Merge partition partials into the global aggregate."""
        rows: List[Any] = []
        for p in partials:
            if not p:
                continue
            if self._bounded():
                rows.extend(entry[2] for entry in p["heap"])
            else:
                rows.extend(p)
        if self.order_key is not None:
            rows.sort(key=self.order_key, reverse=not self.ascending)
        if self.limit is not None:
            rows = rows[: self.limit]
        return rows

    def finalize(self, combined: List[Any]) -> List[Any]:
        return combined

    def reseed(self, combined: List[Any]) -> List[Tuple[int, Tuple[Any, ...]]]:
        seeds = []
        for row in combined:
            payload = row if isinstance(row, tuple) else (row,)
            seeds.append((-1, payload))
        return seeds


def _neg_entry3(entry: Tuple[Any, Any, Any]) -> Tuple[Any, Any, Any]:
    return (_NegKey(entry[0]), entry[1], entry[2])


def _unneg_entry3(entry: Tuple[Any, Any, Any]) -> Tuple[Any, Any, Any]:
    return (entry[0].key, entry[1], entry[2])
