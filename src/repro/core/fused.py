"""Fused physical operators produced by the plan-level fusion pass.

The fusion pass (:mod:`repro.query.fusion`) collapses short operator
chains into single fused ops so a run never materializes the intermediate
frontier: the fused op applies the whole chain per traverser and only
emits the survivors (or, for count sinks, nothing at all — the count is
absorbed directly into the downstream barrier's partial).

A fused plan is a *different* plan from its unfused source: simulated
timings and traverser counts legitimately differ (that is the point).
The contracts that do hold, and that the equivalence suites assert:

* **result equivalence** — a fused plan produces exactly the same result
  rows as the unfused plan it was derived from;
* **kernel equivalence** — on the *same* fused plan, the scalar, batch,
  and vector kernels produce bit-for-bit identical simulated output, so
  every fused op's ``apply`` and ``apply_batch`` must be observationally
  identical (children order, per-traverser cost counts, memo effects).

Fusion legality notes (enforced by the pass, relied on here):

* chains only fuse when every intermediate hop would have executed on the
  partition the fused op runs on — e.g. expand→expand only fuses on an
  unpartitioned store, and expand→filter only when the filter is
  payload-only (``needs_vertex=False``);
* count sinks absorb into the *original* barrier's memo label, and the
  barrier op itself stays in the plan at its index, so stage-termination
  partial gathering (which reads the barrier op, on every partition) is
  unchanged;
* replaced ops keep their plan index and jump targets, so other ops that
  jump *into* the middle of a fused chain still execute the original
  (unreplaced) intermediate ops.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.steps import (
    AggregateOp,
    BatchOutcome,
    ChildSpec,
    DedupOp,
    ExpandOp,
    FilterOp,
    MinDistBranchOp,
    PhysicalOp,
    ProjectOp,
    StepContext,
    StepOutcome,
    VertexRoutedOp,
    _NO_CHILDREN,
)
from repro.core.traverser import Traverser
from repro.graph.partition import HashPartitioner

__all__ = [
    "FusedMinDistCount",
    "FusedMinDistChain",
    "FusedCountSink",
    "FusedCollectSink",
    "FusedGroupCountSink",
    "FusedChain",
    "FusedExpandFilter",
    "FusedExpandExpand",
]

#: Shared cost tuples of :class:`FusedMinDistCount` (identity-cached by
#: the batched kernels like ``_EXPAND_COSTS``).
_FUSED_PRUNE: Tuple[int, int, int, int] = (1, 0, 1, 0)
_FUSED_ADMIT: Tuple[int, int, int, int] = (2, 0, 2, 0)


def _add(a: int, b: int) -> int:
    return a + b


class FusedMinDistCount(VertexRoutedOp):
    """``MinDistBranch`` whose exit chain ends at a ``count()`` barrier
    (the k-hop counting plan's hot loop, paper Fig 5 + Fig 6 fused).

    Instead of spawning an exit child that travels to the barrier just to
    bump a counter, an admitted traverser bumps the partition-local count
    partial in place and only the loop continuation (when ``d < k``) is
    materialized — with the *full* parent weight (no split, no RNG draw),
    since there is no sibling. Count partials are gathered from every
    partition at stage termination, so absorbing at the branch's home
    partition instead of the barrier's routed home is result-identical.

    Two exit shapes fuse:

    * ``exit → Count`` — every admitted (improving) traverser counts;
    * ``exit → Dedup(vertex) → Count`` (the ``khop().count()`` lowering,
      ``count_first=True``) — only the *first* admission of each vertex
      counts. Exact because a vertex-keyed dedup deduplicates exactly the
      vertices whose distance entry already exists, and both the branch
      memo and the dedup table live at the vertex's home partition.
    """

    def __init__(
        self,
        branch: MinDistBranchOp,
        agg: AggregateOp,
        count_first: bool = False,
    ) -> None:
        suffix = "+dedup" if count_first else ""
        super().__init__(f"FusedMinDistCount(k={branch.max_dist}{suffix})")
        self.dist_slot = branch.dist_slot
        self.max_dist = branch.max_dist
        self.memo_label = branch.memo_label
        self.agg_label = agg.memo_label()
        self.count_first = count_first
        self.loop_idx = branch.loop_idx
        self.exit_idx = branch.exit_idx  # kept for plan validation/dumps
        self.stage = branch.stage

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        out.cost.memo_ops += 1
        dist = trav.payload[self.dist_slot]
        tbl = ctx.memo.table(self.memo_label)
        vertex = trav.vertex
        old = tbl.get(vertex)
        if old is not None and dist >= old:
            return out  # pruned: an earlier traverser got here no later
        tbl[vertex] = dist
        out.cost.base += 1
        out.cost.memo_ops += 1
        if old is None or not self.count_first:
            ctx.memo.accumulate(self.agg_label, "partial", 1, _add)
        if dist < self.max_dist:
            out.child(trav.vertex, self.loop_idx, trav.payload, trav.loops)
        return out

    def apply_batch(
        self, ctx: StepContext, travs: Sequence[Traverser]
    ) -> BatchOutcome:
        children: List[List[ChildSpec]] = []
        append = children.append
        costs: List[Tuple[int, int, int, int]] = []
        cost_append = costs.append
        tbl = ctx.memo.table(self.memo_label)
        tbl_get = tbl.get
        dist_slot = self.dist_slot
        max_dist = self.max_dist
        loop_idx = self.loop_idx
        count_first = self.count_first
        counted = 0
        for trav in travs:
            dist = trav.payload[dist_slot]
            vertex = trav.vertex
            old = tbl_get(vertex)
            if old is not None and dist >= old:
                append(_NO_CHILDREN)
                cost_append(_FUSED_PRUNE)
                continue
            tbl[vertex] = dist
            if old is None or not count_first:
                counted += 1
            cost_append(_FUSED_ADMIT)
            if dist < max_dist:
                append([(vertex, loop_idx, trav.payload, trav.loops)])
            else:
                append(_NO_CHILDREN)
        if counted:
            atbl = ctx.memo.table(self.agg_label)
            atbl["partial"] = atbl.get("partial", 0) + counted
        return BatchOutcome(children, costs)


class FusedCountSink(PhysicalOp):
    """Any single-successor op whose children all feed a ``count()``
    barrier: apply the inner op, count its children into the partition
    partial, emit nothing.

    Works for Expand, Filter, Dedup, Project — and for already-fused
    inner ops like :class:`FusedExpandFilter` (giving the full
    expand→filter→count collapse of one chain into one op).
    """

    def __init__(self, inner: PhysicalOp, agg: AggregateOp) -> None:
        super().__init__(f"Fused({inner.name}+Count)")
        self.inner = inner
        self.agg_label = agg.memo_label()
        self.routing_mode = inner.routing_mode
        self.next_idx = inner.next_idx  # validation only; never spawned to
        self.stage = inner.stage

    def routing(self, partitioner: HashPartitioner, trav: Traverser):
        return self.inner.routing(partitioner, trav)

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = self.inner.apply(ctx, trav)
        n = len(out.children)
        if n:
            ctx.memo.accumulate(self.agg_label, "partial", n, _add)
            out.children = []
        out.cost.base += 1
        out.cost.memo_ops += 1
        return out

    def apply_batch(
        self, ctx: StepContext, travs: Sequence[Traverser]
    ) -> BatchOutcome:
        outc = self.inner.apply_batch(ctx, travs)
        total = 0
        for specs in outc.children:
            total += len(specs)
        if total:
            atbl = ctx.memo.table(self.agg_label)
            atbl["partial"] = atbl.get("partial", 0) + total
        # Bump each cost tuple by the absorb (+1 base, +1 memo op),
        # preserving tuple sharing so the kernels' identity cost caches
        # keep hitting.
        bumped = {}
        costs: List[Tuple[int, int, int, int]] = []
        cost_append = costs.append
        for ct in outc.costs:
            nt = bumped.get(id(ct))
            if nt is None:
                nt = (ct[0] + 1, ct[1], ct[2] + 1, ct[3])
                bumped[id(ct)] = nt
            cost_append(nt)
        n = len(travs)
        return BatchOutcome([_NO_CHILDREN] * n, costs)


class _FusedAbsorbSink(PhysicalOp):
    """Shared machinery of the aggregation-pushdown sinks: apply the
    inner op, fold each surviving child row into the partition-local
    partial of the downstream barrier (via its own ``absorb``), emit
    nothing. Cost accounting mirrors :class:`FusedCountSink`: every
    inner cost tuple is bumped by the absorb (+1 base, +1 memo op),
    preserving tuple sharing for the kernels' identity cost caches.
    """

    def __init__(self, inner: PhysicalOp, agg: AggregateOp, tag: str) -> None:
        super().__init__(f"Fused({inner.name}+{tag})")
        self.inner = inner
        self.agg = agg
        self.routing_mode = inner.routing_mode
        self.next_idx = inner.next_idx  # validation only; never spawned to
        self.stage = inner.stage
        # Chain inners take a direct-walk batch path: the links are walked
        # here and survivors folded straight into the barrier partial,
        # skipping the intermediate child-spec lists. The bumped prefix
        # tuples are precomputed (and shared across runs) so the slim
        # kernels' identity cost caches keep hitting.
        if type(inner) is FusedChain:
            self._chain_links = inner._links
            self._chain_bumped = [
                (b + 1, e, m + 1, p) for (b, e, m, p) in inner._prefix
            ]
        else:
            self._chain_links = None
            self._chain_bumped = None

    def routing(self, partitioner: HashPartitioner, trav: Traverser):
        return self.inner.routing(partitioner, trav)

    def _absorb_specs(
        self, ctx: StepContext, query_id: int, stage: int, specs
    ) -> None:
        absorb = self.agg.absorb
        probe = Traverser(query_id, -1, 0, (), 0, stage, 0)
        for vertex, _ix, payload, loops in specs:
            probe.vertex = vertex
            probe.payload = payload
            probe.loops = loops
            absorb(ctx, probe)

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = self.inner.apply(ctx, trav)
        if out.children:
            self._absorb_specs(ctx, trav.query_id, trav.stage, out.children)
            out.children = []
        out.cost.base += 1
        out.cost.memo_ops += 1
        return out

    def apply_batch(
        self, ctx: StepContext, travs: Sequence[Traverser]
    ) -> BatchOutcome:
        links = self._chain_links
        if links is not None:
            return self._chain_absorb_run(ctx, travs)
        outc = self.inner.apply_batch(ctx, travs)
        qid = travs[0].query_id
        stage = travs[0].stage
        # One bulk fold for the whole run: the barrier's own apply_batch
        # fetches the partial once and folds rows in the same order (and
        # with the same push/pop sequence) as per-row absorb would.
        probes = [
            Traverser(qid, vertex, 0, payload, 0, stage, loops)
            for specs in outc.children
            for vertex, _ix, payload, loops in specs
        ]
        if probes:
            self.agg.apply_batch(ctx, probes)
        bumped = {}
        costs: List[Tuple[int, int, int, int]] = []
        cost_append = costs.append
        for ct in outc.costs:
            nt = bumped.get(id(ct))
            if nt is None:
                nt = (ct[0] + 1, ct[1], ct[2] + 1, ct[3])
                bumped[id(ct)] = nt
            cost_append(nt)
        return BatchOutcome([_NO_CHILDREN] * len(travs), costs)

    def _chain_absorb_run(
        self, ctx: StepContext, travs: Sequence[Traverser]
    ) -> BatchOutcome:
        """Direct-walk batch path for ``FusedChain`` inners: the chain
        links run inline (same link semantics and drop pricing as
        :meth:`FusedChain.apply_batch`) and survivors fold straight into
        the barrier partial via one bulk ``apply_batch`` — no per-survivor
        child-spec lists, no second pass over the costs."""
        links = self._chain_links
        bumped = self._chain_bumped
        full = bumped[-1]
        costs: List[Tuple[int, int, int, int]] = []
        cost_append = costs.append
        probes: List[Traverser] = []
        probe_append = probes.append
        memo = ctx.memo
        insert_if_absent = memo.insert_if_absent
        walk = Traverser(0, -1, self.next_idx, (), 0, self.stage, 0)
        for trav in travs:
            payload = trav.payload
            walk.query_id = trav.query_id
            walk.vertex = trav.vertex
            walk.payload = payload
            walk.loops = trav.loops
            for j, link in enumerate(links):
                kind = link[0]
                if kind == "p":
                    pl = list(payload)
                    for slot, expr in link[1]:
                        pl[slot] = expr(ctx, walk)
                    payload = tuple(pl)
                    walk.payload = payload
                elif kind == "f":
                    if not link[1](ctx, walk):
                        cost_append(bumped[j])
                        break
                elif not insert_if_absent(link[1], trav.vertex):
                    cost_append(bumped[j])
                    break
            else:
                cost_append(full)
                probe_append(
                    Traverser(
                        trav.query_id, trav.vertex, 0, payload, 0,
                        trav.stage, trav.loops,
                    )
                )
        if probes:
            self.agg.apply_batch(ctx, probes)
        return BatchOutcome([_NO_CHILDREN] * len(travs), costs)


class FusedCollectSink(_FusedAbsorbSink):
    """Any single-successor op whose children all feed an *ordered*
    ``Collect`` barrier with a totally-ordered sort key: the classic
    distributed top-N pushdown — partial top-N below the exchange,
    merged at stage termination by the barrier's own ``combine``.

    Legality is gated by the query declaring ``unique=True`` on its
    ``order_by``: :meth:`CollectAgg.combine` sorts merged rows by the
    order key alone, so when that key never ties, which partition
    absorbed a row (and in what arrival order) cannot change the final
    top-N. Without the declaration, ties at the cutoff resolve by
    barrier-arrival order, which pushdown does not preserve — the
    fusion pass skips those plans.
    """

    def __init__(self, inner: PhysicalOp, agg: AggregateOp) -> None:
        super().__init__(inner, agg, "Collect")


class FusedGroupCountSink(_FusedAbsorbSink):
    """Any single-successor op whose children all feed a ``groupCount``
    barrier. Unconditionally sound (unlike the collect pushdown):
    per-key counts merge by addition — commutative and associative —
    and the barrier's finalize orders groups by ``(-count, key)``, so
    absorption partition and order are unobservable in the result.
    """

    def __init__(self, inner: PhysicalOp, agg: AggregateOp) -> None:
        super().__init__(inner, agg, "GroupCount")


class FusedChain(PhysicalOp):
    """A run of consecutive unary, vertex-preserving ops — ``Filter``,
    ``Project``, vertex-keyed ``Dedup`` — applied in sequence per
    traverser, without materializing the intermediate hops.

    All three op kinds pass ``trav.vertex`` through unchanged, so the
    whole chain can execute at one partition. The fused op routes by
    vertex when *any* link needs the vertex's partition (property reads,
    the vertex dedup memo) — exact, because the vertex never changes —
    and stays free-routed otherwise. Custom-keyed dedups route by key
    hash and are excluded by the fusion pass (their memo must shard by
    key, not by vertex).

    A traverser dropped at link *j* (failed filter, duplicate key) is
    priced for links ``0..j``; survivors for the whole chain. The prefix
    cost tuples are precomputed and shared so the batched kernels'
    identity cost caches keep hitting.
    """

    def __init__(self, subs: Sequence[PhysicalOp]) -> None:
        super().__init__("Chain(" + "+".join(s.name for s in subs) + ")")
        self.subs = list(subs)
        self.next_idx = subs[-1].next_idx
        self.stage = subs[0].stage
        self.routing_mode = (
            "vertex"
            if any(s.routing_mode == "vertex" for s in subs)
            else subs[0].routing_mode
        )
        links: List[Tuple[Any, ...]] = []
        prefix: List[Tuple[int, int, int, int]] = []
        base = memo = props = 0
        for s in subs:
            t = type(s)
            base += 1
            if t is FilterOp:
                links.append(("f", s.predicate))
                props += 1
            elif t is ProjectOp:
                links.append(("p", list(s.assignments)))
                props += len(s.assignments)
            else:
                # Vertex-keyed DedupOp: the fusion pass only admits
                # ``routing_mode == "vertex"``, which implies the default
                # ``trav.vertex`` key — so the key_fn call is elided.
                links.append(("d", s.memo_label))
                memo += 1
            prefix.append((base, 0, memo, props))
        self._links = links
        self._prefix = prefix

    def routing(self, partitioner: HashPartitioner, trav: Traverser):
        if self.routing_mode == "vertex":
            return partitioner(trav.vertex)
        return None

    def _walk(
        self, ctx: StepContext, trav: Traverser
    ) -> Tuple[Tuple[int, int, int, int], Optional[Tuple[Any, ...]]]:
        """Run the chain for one traverser: (cost tuple, payload | None)."""
        payload = trav.payload
        probe = Traverser(
            trav.query_id, trav.vertex, self.next_idx, payload, 0,
            trav.stage, trav.loops,
        )
        memo = ctx.memo
        for j, link in enumerate(self._links):
            kind = link[0]
            if kind == "p":
                pl = list(payload)
                for slot, expr in link[1]:
                    pl[slot] = expr(ctx, probe)
                payload = tuple(pl)
                probe.payload = payload
            elif kind == "f":
                if not link[1](ctx, probe):
                    return self._prefix[j], None
            elif not memo.insert_if_absent(link[1], trav.vertex):
                return self._prefix[j], None
        return self._prefix[-1], payload

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        ct, payload = self._walk(ctx, trav)
        cost = out.cost
        cost.base = ct[0]
        cost.memo_ops = ct[2]
        cost.props = ct[3]
        if payload is not None:
            out.child(trav.vertex, self.next_idx, payload, trav.loops)
        return out

    def apply_batch(
        self, ctx: StepContext, travs: Sequence[Traverser]
    ) -> BatchOutcome:
        # Inlined :meth:`_walk` with one probe object reused across the
        # whole batch (constructing a Traverser per link evaluation is the
        # chain's main overhead at batch sizes).
        children: List[List[ChildSpec]] = []
        append = children.append
        costs: List[Tuple[int, int, int, int]] = []
        cost_append = costs.append
        links = self._links
        prefix = self._prefix
        full = prefix[-1]
        nxt = self.next_idx
        memo = ctx.memo
        insert_if_absent = memo.insert_if_absent
        probe = Traverser(0, -1, nxt, (), 0, self.stage, 0)
        for trav in travs:
            payload = trav.payload
            probe.query_id = trav.query_id
            probe.vertex = trav.vertex
            probe.payload = payload
            probe.loops = trav.loops
            for j, link in enumerate(links):
                kind = link[0]
                if kind == "p":
                    pl = list(payload)
                    for slot, expr in link[1]:
                        pl[slot] = expr(ctx, probe)
                    payload = tuple(pl)
                    probe.payload = payload
                elif kind == "f":
                    if not link[1](ctx, probe):
                        cost_append(prefix[j])
                        append(_NO_CHILDREN)
                        break
                elif not insert_if_absent(link[1], trav.vertex):
                    cost_append(prefix[j])
                    append(_NO_CHILDREN)
                    break
            else:
                cost_append(full)
                append([(trav.vertex, nxt, payload, trav.loops)])
        return BatchOutcome(children, costs)


class FusedMinDistChain(VertexRoutedOp):
    """``MinDistBranch`` with its exit chain (and optionally the chain's
    trailing ``Expand``) applied inline — the k-hop *frontier* hot loop
    of plans that post-process k-hop results rather than counting them.

    The unfused lowering makes every admission spawn an exit child that
    hops through ``Dedup``/``Filter``/``Project`` ops at the same
    partition before leaving the loop. Those local hops interleave with
    the loop's expand children in the partition queue and shatter the
    batched kernels' homogeneous runs. Inlining the chain (all links are
    vertex-preserving, and the branch memo, dedup table, and vertex
    properties all live at the vertex's home partition) emits the chain
    *survivor* directly at the chain successor — and when the successor
    is a plain same-vertex ``Expand``, its adjacency is also local, so
    the survivor's expansion children are emitted directly too.

    Result-exactness of inlining the dedup links: every exit child routes
    to the chain head at its own vertex's partition via the local FIFO
    queue, so the first-arriving exit for a vertex is the first branch
    admission — exactly the traverser the inline dedup admits. The fusion
    pass additionally requires the chain ops to have no other
    predecessors, so no foreign traverser can race the shared memo label.
    """

    def __init__(
        self,
        branch: MinDistBranchOp,
        chain: FusedChain,
        expand: Optional[ExpandOp] = None,
    ) -> None:
        tail = f"+{expand.name}" if expand is not None else ""
        super().__init__(f"Fused({branch.name}+{chain.name}{tail})")
        self.dist_slot = branch.dist_slot
        self.max_dist = branch.max_dist
        self.memo_label = branch.memo_label
        self.loop_idx = branch.loop_idx
        self.exit_idx = branch.exit_idx  # kept for plan validation/dumps
        self.stage = branch.stage
        self.expand = expand
        self.next_idx = expand.next_idx if expand is not None else chain.next_idx
        self._links = chain._links
        # Chain prefixes shifted by the branch's own cost (+1 base,
        # +1 memo op); dropped-at-link-j exits price links 0..j.
        self._prefix = [
            (b + 1, e, m + 1, p) for b, e, m, p in chain._prefix
        ]

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = StepOutcome()
        cost = out.cost
        dist = trav.payload[self.dist_slot]
        vertex = trav.vertex
        tbl = ctx.memo.table(self.memo_label)
        old = tbl.get(vertex)
        if old is not None and dist >= old:
            cost.memo_ops += 1
            return out  # pruned
        tbl[vertex] = dist
        payload = trav.payload
        probe = Traverser(
            trav.query_id, vertex, self.next_idx, payload, 0,
            trav.stage, trav.loops,
        )
        memo = ctx.memo
        ct = self._prefix[-1]
        for j, link in enumerate(self._links):
            kind = link[0]
            if kind == "p":
                pl = list(payload)
                for slot, expr in link[1]:
                    pl[slot] = expr(ctx, probe)
                payload = tuple(pl)
                probe.payload = payload
            elif kind == "f":
                if not link[1](ctx, probe):
                    ct, payload = self._prefix[j], None
                    break
            elif not memo.insert_if_absent(link[1], vertex):
                ct, payload = self._prefix[j], None
                break
        cost.base = ct[0]
        cost.memo_ops = ct[2]
        cost.props = ct[3]
        if payload is not None:
            if self.expand is not None:
                probe.payload = payload
                ex_out = self.expand.apply(ctx, probe)
                ex_cost = ex_out.cost
                cost.base += ex_cost.base
                cost.edges += ex_cost.edges
                cost.memo_ops += ex_cost.memo_ops
                cost.props += ex_cost.props
                out.children.extend(ex_out.children)
            else:
                out.child(vertex, self.next_idx, payload, trav.loops)
        if dist < self.max_dist:
            out.child(vertex, self.loop_idx, trav.payload, trav.loops)
        return out

    def apply_batch(
        self, ctx: StepContext, travs: Sequence[Traverser]
    ) -> BatchOutcome:
        children: List[List[ChildSpec]] = []
        append = children.append
        costs: List[Tuple[int, int, int, int]] = []
        cost_append = costs.append
        memo = ctx.memo
        tbl = memo.table(self.memo_label)
        tbl_get = tbl.get
        insert_if_absent = memo.insert_if_absent
        dist_slot = self.dist_slot
        max_dist = self.max_dist
        loop_idx = self.loop_idx
        nxt = self.next_idx
        links = self._links
        prefix = self._prefix
        full = prefix[-1]
        expand = self.expand
        expand_apply = None if expand is None else expand.apply
        probe = Traverser(0, -1, nxt, (), 0, self.stage, 0)
        for trav in travs:
            orig = trav.payload
            dist = orig[dist_slot]
            vertex = trav.vertex
            old = tbl_get(vertex)
            if old is not None and dist >= old:
                append(_NO_CHILDREN)
                cost_append(_FUSED_PRUNE)
                continue
            tbl[vertex] = dist
            payload = orig
            probe.query_id = trav.query_id
            probe.vertex = vertex
            probe.payload = payload
            probe.loops = trav.loops
            ct = full
            for j, link in enumerate(links):
                kind = link[0]
                if kind == "p":
                    pl = list(payload)
                    for slot, expr in link[1]:
                        pl[slot] = expr(ctx, probe)
                    payload = tuple(pl)
                    probe.payload = payload
                elif kind == "f":
                    if not link[1](ctx, probe):
                        ct, payload = prefix[j], None
                        break
                elif not insert_if_absent(link[1], vertex):
                    ct, payload = prefix[j], None
                    break
            if payload is None:
                specs: List[ChildSpec] = []
            elif expand_apply is not None:
                probe.payload = payload
                ex_out = expand_apply(ctx, probe)
                ex_cost = ex_out.cost
                ct = (
                    ct[0] + ex_cost.base, ct[1] + ex_cost.edges,
                    ct[2] + ex_cost.memo_ops, ct[3] + ex_cost.props,
                )
                specs = ex_out.children
            else:
                specs = [(vertex, nxt, payload, trav.loops)]
            if dist < max_dist:
                specs.append((vertex, loop_idx, orig, trav.loops))
            append(specs if specs else _NO_CHILDREN)
            cost_append(ct)
        return BatchOutcome(children, costs)


class FusedExpandFilter(VertexRoutedOp):
    """Expand fused with a payload-only filter: survivors jump straight
    to the filter's successor, failed children are never materialized.

    Legal only for ``needs_vertex=False`` predicates — those read the
    candidate traverser (payload, vertex id, loops) and the query
    parameters but never the partition store, so evaluating them at the
    *parent's* partition (before routing) is exact.
    """

    def __init__(self, expand: ExpandOp, filt: FilterOp) -> None:
        super().__init__(f"Fused({expand.name}+{filt.name})")
        self.expand = expand
        self.filt = filt
        self.next_idx = filt.next_idx
        self.stage = expand.stage

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out = self.expand.apply(ctx, trav)
        specs = out.children
        nc = len(specs)
        out.cost.base += 1
        out.cost.props += nc
        if nc:
            pred = self.filt.predicate
            nxt = self.next_idx
            qid = trav.query_id
            stg = trav.stage
            kept: List[ChildSpec] = []
            for vertex, _ix, payload, loops in specs:
                probe = Traverser(qid, vertex, nxt, payload, 0, stg, loops)
                if pred(ctx, probe):
                    kept.append((vertex, nxt, payload, loops))
            out.children = kept
        return out

    def apply_batch(
        self, ctx: StepContext, travs: Sequence[Traverser]
    ) -> BatchOutcome:
        outc = self.expand.apply_batch(ctx, travs)
        pred = self.filt.predicate
        nxt = self.next_idx
        children: List[List[ChildSpec]] = []
        append = children.append
        costs: List[Tuple[int, int, int, int]] = []
        cost_append = costs.append
        for trav, specs, ct in zip(travs, outc.children, outc.costs):
            nc = len(specs)
            cost_append((ct[0] + 1, ct[1], ct[2], ct[3] + nc))
            if nc:
                qid = trav.query_id
                stg = trav.stage
                kept: List[ChildSpec] = []
                for vertex, _ix, payload, loops in specs:
                    probe = Traverser(qid, vertex, nxt, payload, 0, stg, loops)
                    if pred(ctx, probe):
                        kept.append((vertex, nxt, payload, loops))
                append(kept if kept else _NO_CHILDREN)
            else:
                append(_NO_CHILDREN)
        return BatchOutcome(children, costs)


class FusedExpandExpand(VertexRoutedOp):
    """Two-hop expansion in one step — legal only on an *unpartitioned*
    store (the fusion pass gates on ``num_partitions == 1``), where every
    intermediate vertex's adjacency is local. Grandchildren jump straight
    to the second expand's successor; the intermediate frontier is never
    materialized."""

    def __init__(self, first: ExpandOp, second: ExpandOp) -> None:
        super().__init__(f"Fused({first.name}+{second.name})")
        self.first = first
        self.second = second
        self.next_idx = second.next_idx
        self.stage = first.stage

    def apply(self, ctx: StepContext, trav: Traverser) -> StepOutcome:
        """Execute this op for one traverser (operator contract)."""
        out1 = self.first.apply(ctx, trav)
        out = StepOutcome()
        out.cost = out1.cost
        second = self.second
        qid = trav.query_id
        stg = trav.stage
        children = out.children
        for vertex, _ix, payload, loops in out1.children:
            probe = Traverser(qid, vertex, 0, payload, 0, stg, loops)
            o2 = second.apply(ctx, probe)
            out.cost.add(o2.cost)
            children.extend(o2.children)
        return out
