"""Command-line interface: run paper experiments and demos.

Usage::

    python -m repro list                 # available experiments
    python -m repro run fig10            # one experiment, table to stdout
    python -m repro run table2 fig12     # several experiments
    python -m repro demo                 # the Fig 1 quickstart query
    python -m repro explain khop3        # show a compiled plan
    python -m repro faults --drop-rate 0.01 --seed 1   # fault-injection demo
    python -m repro trace --cancel --out trace.jsonl   # observability demo

Experiment names map to the functions in :mod:`repro.bench.experiments`;
heavyweight experiments accept their default (benchmark-suite) parameters.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.bench import experiments as exp
from repro.bench.report import Table

#: name → (function, description). Functions take no arguments and return
#: a Table (bound with the benchmark-suite defaults).
EXPERIMENTS: Dict[str, tuple] = {
    "table1": (exp.table1_workload_characteristics,
               "Table I: workload-class characteristics"),
    "table2": (exp.table2_datasets, "Table II: dataset summaries"),
    "fig7": (exp.fig7_mixed_workload,
             "Fig 7: mixed LDBC workload, TCR sweep (slow)"),
    "fig8-latency": (exp.fig8_ic_latency, "Fig 8: per-IC latency (slow)"),
    "fig8-throughput": (exp.fig8_ic_throughput,
                        "Fig 8: IC throughput under concurrency (slow)"),
    "fig8-graphscope": (exp.fig8_graphscope_comparison,
                        "§V-A3: single-node comparison"),
    "fig9-vertical": (exp.fig9_vertical, "Fig 9: vertical scalability (slow)"),
    "fig9-horizontal": (exp.fig9_horizontal,
                        "Fig 9: horizontal scalability (slow)"),
    "fig9-longest": (exp.fig9_bsp_long_query,
                     "Fig 9: BSP wins the longest query (slow)"),
    "fig10": (exp.fig10_weight_coalescing, "Fig 10: weight coalescing"),
    "fig11": (exp.fig11_message_counts, "Fig 11: progress message counts"),
    "fig12": (exp.fig12_io_scheduler, "Fig 12: two-tier I/O scheduler"),
    "fig13": (exp.fig13_hardware, "Fig 13: hardware sensitivity"),
}


def _register_ablations() -> None:
    """Ablation experiments live next to their benchmarks; import lazily so
    `python -m repro list` stays fast."""
    from benchmarks import test_ablation_design as design
    from benchmarks import test_ablation_straggler as straggler

    EXPERIMENTS.update({
        "ablation-flush": (design.run_flush_threshold_sweep,
                           "ablation: tier-1 flush threshold sweep"),
        "ablation-batch": (design.run_batch_size_sweep,
                           "ablation: worker batch size sweep"),
        "ablation-hybrid": (design.run_hybrid_comparison,
                            "ablation: hybrid sync/async switching (slow)"),
        "ablation-idle": (straggler.run_bsp_idle_fraction,
                          "ablation: BSP barrier-idle fraction (slow)"),
        "ablation-straggler": (straggler.run_straggler_experiment,
                               "ablation: hardware straggler injection"),
    })


try:  # the benchmarks package is present in source checkouts
    _register_ablations()
except ImportError:  # pragma: no cover - installed without benchmarks/
    pass


def cmd_list(_args: argparse.Namespace) -> int:
    """List the available experiments."""
    width = max(len(name) for name in EXPERIMENTS)
    for name, (_fn, description) in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run the named experiments and print their tables."""
    unknown = [n for n in args.experiments if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro list`", file=sys.stderr)
        return 2
    for name in args.experiments:
        fn, _description = EXPERIMENTS[name]
        table: Table = fn()
        print(table.render())
        if getattr(args, "bars", False):
            column = _first_numeric_column(table)
            if column is not None:
                print()
                print(table.render_bars(column))
        print()
    return 0


def _first_numeric_column(table: Table) -> str:
    """The first column whose values are all numeric (for --bars)."""
    for i, header in enumerate(table.headers):
        values = [row[i] for row in table.rows]
        if values and all(isinstance(v, (int, float)) for v in values):
            if any(isinstance(v, float) for v in values):
                return header
    return None


def cmd_demo(_args: argparse.Namespace) -> int:
    """Run the Fig 1 quickstart query on a generated graph."""
    from repro.bench.harness import khop_traversal
    from repro.datasets.synthetic import LIVEJOURNAL_LIKE, powerlaw_graph
    from repro.runtime.cluster import ClusterConfig
    from repro.runtime.variants import make_graphdance

    print("generating LiveJournal-like graph...")
    graph = powerlaw_graph(LIVEJOURNAL_LIKE, seed=13)
    cluster = ClusterConfig(nodes=4, workers_per_node=4)
    engine = make_graphdance(cluster.partition(graph), cluster)
    plan = khop_traversal(3).compile(engine.graph)
    result = engine.run(plan, {"start": 4242})
    print(f"3-hop top-10 influencers of vertex 4242 "
          f"({result.latency_ms:.3f} ms simulated):")
    for vertex, weight in result.rows:
        print(f"  vertex {vertex:6d}  weight {weight}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Print the compiled physical plan of a query."""
    from repro.bench.harness import khop_traversal
    from repro.datasets.synthetic import PowerLawConfig, powerlaw_graph
    from repro.graph.partition import PartitionedGraph

    name = args.query
    if not name.startswith("khop"):
        print("explain currently supports khop<k> queries (e.g. khop3)",
              file=sys.stderr)
        return 2
    try:
        k = int(name[len("khop"):])
    except ValueError:
        print(f"bad k in {name!r}", file=sys.stderr)
        return 2
    graph = powerlaw_graph(PowerLawConfig("demo", 100, 4.0), seed=1)
    pg = PartitionedGraph.from_graph(graph, 4)
    plan = khop_traversal(k).compile(pg)
    print(plan.describe())
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run a k-hop batch fault-free and under an injected FaultPlan.

    The worked example of docs/FAULTS.md: the same queries are executed
    twice on the same graph — once on a healthy cluster, once with message
    drops (and optionally duplications, delays, and a worker crash) — and
    the rows are compared. Exit code 0 means every faulted query returned
    the fault-free answer.
    """
    import random as _random

    from repro.datasets.synthetic import PowerLawConfig, powerlaw_graph
    from repro.graph.partition import PartitionedGraph
    from repro.query.traversal import Traversal
    from repro.runtime.engine import AsyncPSTMEngine, EngineConfig
    from repro.runtime.faults import FaultPlan, WorkerFault

    nodes, wpn = 4, 2
    config = PowerLawConfig("faults-demo", 400, 6.0)
    graph = PartitionedGraph.from_graph(
        powerlaw_graph(config, seed=7), nodes * wpn
    )
    plan = (
        Traversal("khop3_count")
        .v_param("start")
        .khop(config.edge_label, k=3)
        .count()
        .compile(graph)
    )
    rng = _random.Random(42)
    starts = [rng.randrange(config.num_vertices) for _ in range(args.queries)]

    def run_batch(engine_config: EngineConfig):
        engine = AsyncPSTMEngine(graph, nodes, wpn, config=engine_config)
        sessions = [engine.submit(plan, {"start": s}) for s in starts]
        engine.clock.run_until_idle()
        return engine, sessions

    def describe(engine, sessions, label: str) -> None:
        done = sum(1 for s in sessions if s.qmetrics.done and not s.failed)
        mean_lat = sum(s.qmetrics.latency_us for s in sessions) / len(sessions)
        m = engine.metrics
        print(
            f"{label:<11} {done}/{len(sessions)} queries ok, "
            f"mean latency {mean_lat:8.1f} us, {m.packets_sent} packets, "
            f"{m.retransmits} retransmits, {m.query_retries} retries"
        )

    worker_faults = ()
    if args.crash:
        fields = args.crash.split(":")
        if len(fields) not in (2, 3):
            print("--crash expects WID:AT_US[:DOWN_US]", file=sys.stderr)
            return 2
        worker_faults = (
            WorkerFault(
                wid=int(fields[0]),
                at_us=float(fields[1]),
                down_us=float(fields[2]) if len(fields) == 3 else None,
            ),
        )
    fault_plan = FaultPlan(
        seed=args.seed,
        drop_rate=args.drop_rate,
        dup_rate=args.dup_rate,
        delay_rate=args.delay_rate,
        worker_faults=worker_faults,
    )

    base_engine, base = run_batch(EngineConfig())
    describe(base_engine, base, "fault-free")
    faulted_engine, faulted = run_batch(EngineConfig(fault_plan=fault_plan))
    describe(faulted_engine, faulted, "faulted")
    counts = faulted_engine.faults.counts
    print(
        f"injected    drops={counts['drops']} dups={counts['duplicates']} "
        f"delays={counts['delays']} crashes={counts['crashes']} "
        f"stalls={counts['stalls']}"
    )
    identical = all(
        f.results == b.results and not f.failed for f, b in zip(faulted, base)
    )
    print(f"rows identical to fault-free run: {'yes' if identical else 'NO'}")
    return 0 if identical else 1


def cmd_overload(args: argparse.Namespace) -> int:
    """Run the overload soak (open-loop LDBC mix, rising arrival rates)."""
    from repro.bench import overload

    forwarded: List[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.check:
        forwarded.append("--check")
    if args.unprotected:
        forwarded.append("--unprotected")
    if args.count is not None:
        forwarded.extend(["--count", str(args.count)])
    if args.out:
        forwarded.extend(["--out", args.out])
    return overload.main(forwarded)


def cmd_recovery(args: argparse.Namespace) -> int:
    """Run the recovery bench (crash + force-retry vs checkpoint restore)."""
    from repro.bench import recovery

    forwarded: List[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.check:
        forwarded.append("--check")
    if args.out:
        forwarded.extend(["--out", args.out])
    return recovery.main(forwarded)


def cmd_preempt(args: argparse.Namespace) -> int:
    """Run the preemption bench (interactive tail latency, pause/resume)."""
    from repro.bench import preempt

    forwarded: List[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.check:
        forwarded.append("--check")
    if args.out:
        forwarded.extend(["--out", args.out])
    return preempt.main(forwarded)


def cmd_migrate(args: argparse.Namespace) -> int:
    """Run the migration bench (mined live migration vs static hash)."""
    from repro.bench import migration

    forwarded: List[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.check:
        forwarded.append("--check")
    if args.out:
        forwarded.extend(["--out", args.out])
    return migration.main(forwarded)


def cmd_mixed(args: argparse.Namespace) -> int:
    """Run the mixed bench (IC reads under concurrent SNB updates)."""
    from repro.bench import mixed

    forwarded: List[str] = []
    if args.quick:
        forwarded.append("--quick")
    if args.check:
        forwarded.append("--check")
    if args.out:
        forwarded.extend(["--out", args.out])
    return mixed.main(forwarded)


def _parse_crash(spec: str):
    """``WID:AT_US[:DOWN_US]`` → a WorkerFault tuple (empty spec → ())."""
    from repro.runtime.faults import WorkerFault

    if not spec:
        return ()
    fields = spec.split(":")
    if len(fields) not in (2, 3):
        raise ValueError("crash spec expects WID:AT_US[:DOWN_US]")
    return (
        WorkerFault(
            wid=int(fields[0]),
            at_us=float(fields[1]),
            down_us=float(fields[2]) if len(fields) == 3 else None,
        ),
    )


def _trace_run(recipe: Dict):
    """Execute one traced batch described by a replay recipe dict.

    The recipe is the *complete* input of a traced run — workload, query
    count, engine/fault seed, drop rate, cancel flag, crash spec, and
    checkpoint interval. The simulator is deterministic, so the same
    recipe always produces the same trace, which is what makes
    ``python -m repro trace --replay`` a bit-for-bit check. Returns the
    drained ``(engine, sessions)``.
    """
    import random as _random

    from repro.graph.partition import PartitionedGraph
    from repro.runtime.engine import AsyncPSTMEngine, EngineConfig
    from repro.runtime.faults import FaultPlan

    nodes, wpn = 4, 2
    workload = recipe.get("workload", "khop3")
    queries = int(recipe["queries"])
    rng = _random.Random(42)
    if workload == "khop3":
        from repro.datasets.synthetic import PowerLawConfig, powerlaw_graph
        from repro.query.traversal import Traversal

        config = PowerLawConfig("trace-demo", 400, 6.0)
        graph = PartitionedGraph.from_graph(
            powerlaw_graph(config, seed=7), nodes * wpn
        )
        plan = (
            Traversal("khop3_count")
            .v_param("start")
            .khop(config.edge_label, k=3)
            .count()
            .compile(graph)
        )
        params = [
            {"start": rng.randrange(config.num_vertices)}
            for _ in range(queries)
        ]
    elif workload == "ic9":
        from repro.ldbc.generator import SNB_TINY, generate_snb
        from repro.ldbc.queries.ic import IC_QUERIES

        dataset = generate_snb(SNB_TINY)
        graph = dataset.partitioned(nodes * wpn)
        qdef = IC_QUERIES[9]
        plan = qdef.build().compile(graph)
        params = [qdef.make_params(dataset, rng) for _ in range(queries)]
    else:
        raise ValueError(f"unknown trace workload {workload!r}")

    worker_faults = _parse_crash(recipe.get("crash") or "")
    drop_rate = float(recipe.get("drop_rate", 0.0))
    fault_plan = None
    if drop_rate > 0 or worker_faults:
        fault_plan = FaultPlan(
            seed=int(recipe["seed"]), drop_rate=drop_rate,
            worker_faults=worker_faults,
        )
    engine = AsyncPSTMEngine(
        graph, nodes, wpn,
        config=EngineConfig(
            trace=True, fault_plan=fault_plan,
            checkpoint_interval_us=recipe.get("checkpoint_interval_us"),
        ),
        seed=int(recipe["seed"]),
    )
    sessions = [engine.submit(plan, p) for p in params]
    if recipe.get("cancel") and sessions:
        engine.clock.schedule_at(
            40.0, lambda: engine.cancel(sessions[0], "caller")
        )
    engine.clock.run_until_idle()
    return engine, sessions


def _cmd_trace_replay(path: str) -> int:
    """Deterministically re-execute a dumped trace and compare bit for bit.

    Reads the JSONL dump, extracts its ``replay_recipe`` record, re-runs
    the exact engine configuration, and compares every regenerated event
    (kind, timestamp, query id, full payload) against the recorded ones.
    The simulator is deterministic, so any mismatch means the runtime's
    behavior changed since the dump — or the dump was edited. Exit 0 =
    identical and the regenerated trace audits clean.
    """
    import json as _json

    from repro.runtime.trace import WeightLedgerAuditor

    recipe = None
    recorded: List[Dict] = []
    with open(path) as fh:
        for line in fh:
            rec = _json.loads(line)
            if rec.get("kind") == "replay_recipe":
                recipe = rec
            elif rec.get("kind") == "run_metrics":
                continue
            else:
                recorded.append(rec)
    if recipe is None:
        print(f"{path}: no replay_recipe record — re-dump it with "
              f"`python -m repro trace --out {path}` first", file=sys.stderr)
        return 2

    engine, _sessions = _trace_run(recipe)
    # Normalize through one JSON round trip so the comparison sees exactly
    # what a dump of the regenerated trace would contain.
    regenerated = [
        _json.loads(_json.dumps(ev.as_dict())) for ev in engine.trace.events
    ]
    print(f"replaying {recipe.get('workload', 'khop3')} "
          f"({recipe['queries']} queries, seed {recipe['seed']}) "
          f"from {path}")
    print(f"recorded events:    {len(recorded)}")
    print(f"regenerated events: {len(regenerated)}")
    identical = regenerated == recorded
    if not identical:
        shown = 0
        for i, (old, new) in enumerate(zip(recorded, regenerated)):
            if old != new:
                print(f"  first divergence at event {i}:")
                print(f"    recorded:    {old}")
                print(f"    regenerated: {new}")
                shown = 1
                break
        if not shown:
            print("  one trace is a prefix of the other")
    report = WeightLedgerAuditor(engine.trace.events).audit()
    print(f"replay {'IDENTICAL' if identical else 'DIVERGED'}; {report}")
    return 0 if identical and report.ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a traced batch, audit the trace, and print a summary.

    The worked example of docs/OBSERVABILITY.md: a batch of queries
    (k-hop by default, LDBC IC9 with ``--workload ic9``) runs with
    ``EngineConfig.trace`` enabled (optionally under injected faults, a
    worker crash, checkpointing, and a mid-flight cancellation), the
    per-query trace summary and event-kind histogram are printed, and the
    :class:`~repro.runtime.trace.WeightLedgerAuditor` replays the trace to
    re-derive the Theorem-1 ledger. Exit code 0 means zero violations.

    JSONL dumps embed a ``replay_recipe`` record; ``--replay FILE``
    re-executes a dump's recipe and verifies the regenerated trace is
    bit-for-bit identical (docs/OBSERVABILITY.md, docs/RECOVERY.md).
    """
    from repro.runtime.trace import WeightLedgerAuditor

    if args.replay:
        return _cmd_trace_replay(args.replay)
    try:
        _parse_crash(args.crash)
    except ValueError as exc:
        print(f"--crash: {exc}", file=sys.stderr)
        return 2
    recipe = {
        "kind": "replay_recipe",
        "workload": args.workload,
        "queries": args.queries,
        "seed": args.seed,
        "drop_rate": args.drop_rate,
        "cancel": bool(args.cancel),
        "crash": args.crash,
        "checkpoint_interval_us": args.checkpoint_interval,
    }
    engine, sessions = _trace_run(recipe)
    trace = engine.trace

    print(f"{len(trace)} trace events from {len(sessions)} queries")
    kinds: Dict[str, int] = {}
    for ev in trace:
        kinds[ev.kind] = kinds.get(ev.kind, 0) + 1
    for kind in sorted(kinds, key=kinds.get, reverse=True):
        print(f"  {kind:<16} {kinds[kind]:>7}")
    print()
    print(f"{'query':>6} {'events':>7} {'traversers':>10} "
          f"{'spawned':>8} {'cpu_us':>10}")
    for qid, row in sorted(engine.trace.summary().items()):
        if qid < 0:
            continue
        print(f"{qid:>6} {row['events']:>7} {row['traversers']:>10} "
              f"{row['spawned']:>8} {row['cpu_us']:>10.1f}")

    if args.out:
        if args.out.endswith(".json"):
            import json as _json

            with open(args.out, "w") as fh:
                _json.dump(trace.to_chrome_trace(), fh)
            print(f"\nwrote Chrome trace to {args.out} "
                  f"(load in chrome://tracing or Perfetto)")
        else:
            import json as _json

            n = trace.dump_jsonl(args.out, metrics=engine.metrics)
            # Append the replay recipe so the dump is self-reproducing:
            # `python -m repro trace --replay <file>` re-runs it bit for bit.
            with open(args.out, "a") as fh:
                fh.write(_json.dumps(recipe))
                fh.write("\n")
            print(f"\nwrote {n + 1} JSONL records to {args.out} "
                  f"(incl. the replay recipe)")

    report = WeightLedgerAuditor(trace.events).audit()
    print(f"\n{report}")
    for violation in report.violations[:10]:
        print(f"  {violation}")
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GraphDance/PSTM reproduction: run paper experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        fn=cmd_list
    )
    run = sub.add_parser("run", help="run experiments and print tables")
    run.add_argument("experiments", nargs="+", metavar="NAME")
    run.add_argument("--bars", action="store_true",
                     help="also print an ASCII bar chart of the first "
                          "numeric column")
    run.set_defaults(fn=cmd_run)
    sub.add_parser("demo", help="run the Fig 1 quickstart query").set_defaults(
        fn=cmd_demo
    )
    explain = sub.add_parser("explain", help="print a compiled plan")
    explain.add_argument("query", metavar="QUERY", help="e.g. khop3")
    explain.set_defaults(fn=cmd_explain)
    faults = sub.add_parser(
        "faults", help="fault-injection demo: same queries, lossy cluster"
    )
    faults.add_argument("--drop-rate", type=float, default=0.01,
                        help="per-packet drop probability (default 0.01)")
    faults.add_argument("--dup-rate", type=float, default=0.0,
                        help="per-packet duplication probability")
    faults.add_argument("--delay-rate", type=float, default=0.0,
                        help="per-packet delay probability")
    faults.add_argument("--seed", type=int, default=1,
                        help="fault-plan RNG seed (default 1)")
    faults.add_argument("--queries", type=int, default=24,
                        help="k-hop queries per batch (default 24)")
    faults.add_argument("--crash", metavar="WID:AT_US[:DOWN_US]", default="",
                        help="also crash worker WID at AT_US (recovering "
                             "after DOWN_US if given)")
    faults.set_defaults(fn=cmd_faults)
    overload = sub.add_parser(
        "overload",
        help="overload soak: open-loop LDBC mix at rising arrival rates",
    )
    overload.add_argument("--quick", action="store_true",
                          help="CI soak: smaller mix, fewer arrivals")
    overload.add_argument("--check", action="store_true",
                          help="exit nonzero unless degradation gates hold")
    overload.add_argument("--unprotected", action="store_true",
                          help="also soak a default-config engine at the "
                               "top rate")
    overload.add_argument("--count", type=int, default=None,
                          help="arrivals per rate point")
    overload.add_argument("--out", default=None,
                          help="write a JSON report here")
    overload.set_defaults(fn=cmd_overload)
    trace = sub.add_parser(
        "trace",
        help="observability demo: traced batch + weight-ledger audit "
             "+ deterministic replay",
    )
    trace.add_argument("--queries", type=int, default=12,
                       help="queries per batch (default 12)")
    trace.add_argument("--seed", type=int, default=1,
                       help="engine/fault RNG seed (default 1)")
    trace.add_argument("--workload", choices=("khop3", "ic9"),
                       default="khop3",
                       help="traced workload: synthetic 3-hop count or "
                            "LDBC IC9 (default khop3)")
    trace.add_argument("--drop-rate", type=float, default=0.0,
                       help="also inject per-packet drops at this rate")
    trace.add_argument("--cancel", action="store_true",
                       help="cancel the first query mid-flight")
    trace.add_argument("--crash", metavar="WID:AT_US[:DOWN_US]", default="",
                       help="also crash worker WID at AT_US (recovering "
                            "after DOWN_US if given)")
    trace.add_argument("--checkpoint-interval", type=float, default=None,
                       metavar="US",
                       help="arm stage-boundary checkpointing at this "
                            "interval (0 = every boundary; see "
                            "docs/RECOVERY.md)")
    trace.add_argument("--out", default=None,
                       help="dump the trace here (.json = Chrome trace "
                            "format, anything else = JSONL with an "
                            "embedded replay recipe)")
    trace.add_argument("--replay", metavar="FILE", default=None,
                       help="re-execute a JSONL dump's recipe and verify "
                            "the regenerated trace is bit-for-bit "
                            "identical (ignores the other options)")
    trace.set_defaults(fn=cmd_trace)
    recovery = sub.add_parser(
        "recovery",
        help="recovery bench: crash + force-retry vs checkpoint restore",
    )
    recovery.add_argument("--quick", action="store_true",
                          help="CI variant: fewer crash points")
    recovery.add_argument("--check", action="store_true",
                          help="exit nonzero unless restore replays "
                               "strictly less work than force-retry")
    recovery.add_argument("--out", default=None,
                          help="write a JSON report here")
    recovery.set_defaults(fn=cmd_recovery)
    preempt = sub.add_parser(
        "preempt",
        help="preemption bench: interactive tail latency with "
             "pause/evict/resume on one slot",
    )
    preempt.add_argument("--quick", action="store_true",
                         help="CI variant: fewer arrivals")
    preempt.add_argument("--check", action="store_true",
                         help="exit nonzero unless preemption strictly "
                              "improves interactive P99 with analytics "
                              "resumed, not shed")
    preempt.add_argument("--out", default=None,
                         help="write a JSON report here")
    preempt.set_defaults(fn=cmd_preempt)
    migrate = sub.add_parser(
        "migrate",
        help="migration bench: mined live vertex migration vs static "
             "hash placement on a Zipf-skewed workload",
    )
    migrate.add_argument("--quick", action="store_true",
                         help="CI variant: fewer queries per wave")
    migrate.add_argument("--check", action="store_true",
                         help="exit nonzero unless migration cuts wave-3 "
                              "traverser messages by >= 25%% with identical "
                              "rows and clean audits on every kernel tier")
    migrate.add_argument("--out", default=None,
                         help="write a JSON report here")
    migrate.set_defaults(fn=cmd_migrate)
    mixed = sub.add_parser(
        "mixed",
        help="mixed bench: IC read latency under concurrent LDBC SNB "
             "update transactions at 0/25/50%% update ratios",
    )
    mixed.add_argument("--quick", action="store_true",
                       help="CI variant: fewer queries per ratio")
    mixed.add_argument("--check", action="store_true",
                       help="exit nonzero unless rows are bit-identical "
                            "across tiers and solo snapshot runs, audits "
                            "are clean, and crash recovery replays the "
                            "version log before traversal restore")
    mixed.add_argument("--out", default=None,
                       help="write a JSON report here")
    mixed.set_defaults(fn=cmd_mixed)
    return parser


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
