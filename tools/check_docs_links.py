#!/usr/bin/env python3
"""Dead-link gate for README.md and docs/*.md.

The docs cross-reference each other and the source tree two ways:

* markdown links — ``[text](docs/FAULTS.md)``, possibly with an anchor
  (``docs/FAULTS.md#fencing``); the file part must exist;
* backticked path references — ``docs/OVERLOAD.md``, ``FAULTS.md``,
  ``tests/test_faults.py``, ``core/progress.py`` — the idiom the prose
  actually uses.

Every such reference must resolve to a real file, trying in order: the
referencing file's own directory (so docs can name siblings bare), the
repository root, and — for source shorthand like ``core/progress.py`` —
the ``src/`` and ``src/repro/`` prefixes. Bare ``*.py`` names without a
directory (``worker.py``) are module shorthand established by context and
are not checked. ``http(s)://`` targets and pure anchors are skipped.

Stdlib only (like ``tools/check_layering.py``). Exit 0 = no dead links.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: [text](target) — markdown links, target captured up to the closing paren
MD_LINK = re.compile(r"\]\(([^)\s]+)\)")
#: `path/to/file.md` — backticked path references (also bare `FILE.md`)
TICKED = re.compile(r"`([A-Za-z0-9_./-]+\.(?:md|py|yml|json|jsonl))`")

#: prefixes tried (in order) after the referencing file's own directory
SEARCH_ROOTS = ("", "src", "src/repro")


def candidates(path: Path):
    """Yield (lineno, target) references found in one markdown file."""
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in MD_LINK.finditer(line):
            yield lineno, match.group(1)
        for match in TICKED.finditer(line):
            yield lineno, match.group(1)


def resolves(base: Path, target: str) -> bool:
    if (base.parent / target).is_file():
        return True
    return any((ROOT / prefix / target).is_file() for prefix in SEARCH_ROOTS)


def main() -> int:
    files = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    errors = []
    checked = 0
    for path in files:
        for lineno, raw in candidates(path):
            target = raw.split("#", 1)[0]
            if not target or raw.startswith(("http://", "https://", "#")):
                continue
            if "/" not in target and target.endswith(".py"):
                continue  # bare module shorthand, context-dependent
            checked += 1
            if not resolves(path, target):
                errors.append(
                    f"{path.relative_to(ROOT)}:{lineno}: dead reference "
                    f"{raw!r} (no such file relative to the doc, the repo "
                    f"root, or src/)"
                )
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} dead link(s)")
        return 1
    print(f"docs links OK: {checked} references across {len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
