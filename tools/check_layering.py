#!/usr/bin/env python3
"""Import-layering and size gates for the runtime package.

The runtime is a strict layering (docs/ARCHITECTURE.md); each module may
import only modules *strictly below* it:

    simclock < config < metrics < trace < checkpoint < lifecycle
             < costmodel < faults < network < overload < preempt < runs
             < vector < kernels < worker < delivery < engine

Everything above ``engine`` (bsp, hybrid, variants, reference, cluster,
the package __init__) composes freely and is not constrained here.

Two classes of violation fail the build:

* an upward (or sideways) runtime import between layered modules — most
  importantly, ``worker.py`` may not import ``engine`` or ``delivery`` at
  runtime: workers reach the delivery plane only through the engine
  object handed to them. ``if TYPE_CHECKING:`` blocks are exempt; typing
  is not a runtime dependency.
* a module outgrowing its budget: ``engine.py`` and ``worker.py`` must
  each stay under 900 lines. The layered decomposition exists to keep
  the god-module from reassembling itself.
* the observation leaf growing dependencies: ``trace.py`` may import
  nothing from the runtime package at runtime except ``simclock`` — in
  particular never ``engine`` or ``delivery``. Hooks hand the recorder
  plain values; tracing must never be able to re-enter the machinery it
  observes.

Stdlib only (ast); no third-party dependency. Exit 0 = clean.
"""

import ast
import sys
from pathlib import Path

RUNTIME = Path(__file__).resolve().parent.parent / "src" / "repro" / "runtime"

#: bottom to top; a module may import only strictly earlier entries
LAYERS = [
    "simclock",
    "config",
    "metrics",
    "trace",
    "checkpoint",
    "lifecycle",
    "costmodel",
    "faults",
    "network",
    "overload",
    "preempt",
    "runs",
    "vector",
    "kernels",
    "worker",
    "delivery",
    "engine",
]
RANK = {name: i for i, name in enumerate(LAYERS)}

#: maximum line count per module (the anti-god-module gate).
#: ``kernels.py`` is budgeted so the kernel tiers stay thin dispatch
#: shells: shared run-partitioning machinery belongs in ``runs.py`` and
#: vector fast paths in ``vector.py``.
MAX_LINES = {"engine.py": 900, "worker.py": 900, "kernels.py": 400}

#: observation leaves: stricter than the layering rank — these modules may
#: import only the listed runtime modules at runtime, nothing else.
#: ``checkpoint`` is a storage leaf beside ``trace``: it holds snapshots,
#: never drives the machinery, and may import only the trace constants.
LEAF_ALLOW = {"trace": {"simclock"}, "checkpoint": {"trace"}}


def _is_type_checking(test: ast.expr) -> bool:
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def runtime_imports(path: Path):
    """Yield (lineno, module) for runtime-package imports outside
    ``if TYPE_CHECKING:`` blocks (their bodies are skipped; else-branches
    still count)."""
    tree = ast.parse(path.read_text(), filename=str(path))

    def visit(node):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and _is_type_checking(child.test):
                for stmt in child.orelse:
                    yield from visit(stmt)
                continue
            if (
                isinstance(child, ast.ImportFrom)
                and child.module
                and child.module.startswith("repro.runtime.")
            ):
                yield child.lineno, child.module.split(".")[2]
            elif isinstance(child, ast.Import):
                for alias in child.names:
                    if alias.name.startswith("repro.runtime."):
                        yield child.lineno, alias.name.split(".")[2]
            yield from visit(child)

    yield from visit(tree)


def main() -> int:
    errors = []

    for name in LAYERS:
        path = RUNTIME / f"{name}.py"
        if not path.exists():
            errors.append(f"{path}: layered module missing")
            continue
        rank = RANK[name]
        for lineno, target in runtime_imports(path):
            if target == name:
                continue
            if target not in RANK:
                errors.append(
                    f"{path}:{lineno}: {name} imports unlayered runtime "
                    f"module {target!r} (only {', '.join(LAYERS[:rank])} "
                    f"are below it)"
                )
            elif RANK[target] >= rank:
                errors.append(
                    f"{path}:{lineno}: {name} imports {target} at runtime, "
                    f"but {target} is layered at or above {name} "
                    f"(move the import under TYPE_CHECKING or invert the "
                    f"dependency)"
                )
            elif name in LEAF_ALLOW and target not in LEAF_ALLOW[name]:
                errors.append(
                    f"{path}:{lineno}: {name} is an observation leaf and "
                    f"may import only "
                    f"{{{', '.join(sorted(LEAF_ALLOW[name]))}}} from the "
                    f"runtime package, not {target}"
                )

    for filename, budget in MAX_LINES.items():
        path = RUNTIME / filename
        lines = sum(1 for _ in path.open())
        if lines >= budget:
            errors.append(
                f"{path}: {lines} lines, budget is < {budget} — split "
                f"responsibilities into a lower layer instead of growing "
                f"the module"
            )

    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} layering violation(s)")
        return 1
    checked = ", ".join(LAYERS)
    print(f"layering OK ({checked}); "
          + "; ".join(f"{f} under {n} lines" for f, n in MAX_LINES.items()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
