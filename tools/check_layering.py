#!/usr/bin/env python3
"""Import-layering and size gates for the runtime package.

The runtime is a strict layering (docs/ARCHITECTURE.md); each module may
import only modules *strictly below* it:

    simclock < config < metrics < trace < checkpoint < txnplane
             < lifecycle < costmodel < faults < network < overload
             < preempt < migrate < runs < vector < kernels < worker
             < delivery < engine

Everything above ``engine`` (bsp, hybrid, variants, reference, cluster,
the package __init__) composes freely and is not constrained here.

Two classes of violation fail the build:

* an upward (or sideways) runtime import between layered modules — most
  importantly, ``worker.py`` may not import ``engine`` or ``delivery`` at
  runtime: workers reach the delivery plane only through the engine
  object handed to them. ``if TYPE_CHECKING:`` blocks are exempt; typing
  is not a runtime dependency.
* a module outgrowing its budget: ``engine.py`` and ``worker.py`` must
  each stay under 900 lines. The layered decomposition exists to keep
  the god-module from reassembling itself.
* the observation leaf growing dependencies: ``trace.py`` may import
  nothing from the runtime package at runtime except ``simclock`` — in
  particular never ``engine`` or ``delivery``. Hooks hand the recorder
  plain values; tracing must never be able to re-enter the machinery it
  observes.
* a call site outside the placement plane computing a partition from the
  raw hash: ``repro.graph.placement`` is the single source of truth for
  vertex ownership (docs/PARTITIONING.md), so ``mix64`` and
  ``% num_partitions``-style placement arithmetic may appear nowhere else
  in the package — a module that owned its own copy would silently
  disagree with the relocation table after a live migration.
* raw TEL / transaction-store access outside the transaction plane:
  ``repro.txn`` and ``repro.graph.tel`` may be imported only by the txn
  package itself, the runtime's ``txnplane`` module, and the LDBC update
  drivers (docs/TRANSACTIONS.md). Every other layer reads versioned data
  through the plane's snapshot views — a module holding its own TEL
  handle could read uncommitted versions past a query's pinned snapshot.

Stdlib only (ast); no third-party dependency. Exit 0 = clean.
"""

import ast
import re
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
RUNTIME = SRC / "runtime"

#: bottom to top; a module may import only strictly earlier entries
LAYERS = [
    "simclock",
    "config",
    "metrics",
    "trace",
    "checkpoint",
    "txnplane",
    "lifecycle",
    "costmodel",
    "faults",
    "network",
    "overload",
    "preempt",
    "migrate",
    "runs",
    "vector",
    "kernels",
    "worker",
    "delivery",
    "engine",
]
RANK = {name: i for i, name in enumerate(LAYERS)}

#: maximum line count per module (the anti-god-module gate).
#: ``kernels.py`` is budgeted so the kernel tiers stay thin dispatch
#: shells: shared run-partitioning machinery belongs in ``runs.py`` and
#: vector fast paths in ``vector.py``.
MAX_LINES = {"engine.py": 900, "worker.py": 900, "kernels.py": 400}

#: observation leaves: stricter than the layering rank — these modules may
#: import only the listed runtime modules at runtime, nothing else.
#: ``checkpoint`` is a storage leaf beside ``trace``: it holds snapshots,
#: never drives the machinery, and may import only the trace constants.
LEAF_ALLOW = {"trace": {"simclock"}, "checkpoint": {"trace"}}

#: the placement plane: the only modules allowed to spell the raw vertex
#: hash or ``% num_partitions`` placement arithmetic
PLACEMENT_PLANE = {"graph/placement.py", "graph/partition.py"}
#: raw-hash placement logic, forbidden outside the placement plane
RAW_HASH = re.compile(r"\bmix64\w*\b|%\s*(?:self\.)?(?:num_partitions|_n)\b")

#: the transaction plane: the only modules allowed to import the raw
#: multi-version stores (``repro.txn`` / ``repro.graph.tel``). ``txn/``
#: is the package itself; ``graph/__init__.py`` re-exports the TEL types;
#: the LDBC update drivers build write transactions; everything else goes
#: through ``runtime/txnplane.py``'s snapshot views.
TXN_PLANE_PREFIXES = ("txn/",)
TXN_PLANE_FILES = {
    "graph/__init__.py",
    "graph/tel.py",
    "runtime/txnplane.py",
    "ldbc/workload.py",
    "ldbc/queries/updates.py",
}
#: raw transaction-store imports, forbidden outside the transaction plane
RAW_TEL = re.compile(r"^\s*(?:from|import)\s+repro\.(?:txn\b|graph\.tel\b)")


def raw_hash_violations(errors) -> None:
    """Flag raw-hash partition computation outside the placement plane."""
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in PLACEMENT_PLANE:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            if RAW_HASH.search(code):
                errors.append(
                    f"{path}:{lineno}: raw-hash placement logic outside the "
                    f"placement plane — route partition lookups through "
                    f"repro.graph.placement.Placement"
                )


def raw_tel_violations(errors) -> None:
    """Flag raw TEL/txn-store imports outside the transaction plane."""
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in TXN_PLANE_FILES or rel.startswith(TXN_PLANE_PREFIXES):
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if RAW_TEL.match(line):
                errors.append(
                    f"{path}:{lineno}: raw transaction-store import outside "
                    f"the transaction plane — read versioned data through "
                    f"repro.runtime.txnplane's snapshot views"
                )


def _is_type_checking(test: ast.expr) -> bool:
    return (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
        isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
    )


def runtime_imports(path: Path):
    """Yield (lineno, module) for runtime-package imports outside
    ``if TYPE_CHECKING:`` blocks (their bodies are skipped; else-branches
    still count)."""
    tree = ast.parse(path.read_text(), filename=str(path))

    def visit(node):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and _is_type_checking(child.test):
                for stmt in child.orelse:
                    yield from visit(stmt)
                continue
            if (
                isinstance(child, ast.ImportFrom)
                and child.module
                and child.module.startswith("repro.runtime.")
            ):
                yield child.lineno, child.module.split(".")[2]
            elif isinstance(child, ast.Import):
                for alias in child.names:
                    if alias.name.startswith("repro.runtime."):
                        yield child.lineno, alias.name.split(".")[2]
            yield from visit(child)

    yield from visit(tree)


def main() -> int:
    errors = []

    for name in LAYERS:
        path = RUNTIME / f"{name}.py"
        if not path.exists():
            errors.append(f"{path}: layered module missing")
            continue
        rank = RANK[name]
        for lineno, target in runtime_imports(path):
            if target == name:
                continue
            if target not in RANK:
                errors.append(
                    f"{path}:{lineno}: {name} imports unlayered runtime "
                    f"module {target!r} (only {', '.join(LAYERS[:rank])} "
                    f"are below it)"
                )
            elif RANK[target] >= rank:
                errors.append(
                    f"{path}:{lineno}: {name} imports {target} at runtime, "
                    f"but {target} is layered at or above {name} "
                    f"(move the import under TYPE_CHECKING or invert the "
                    f"dependency)"
                )
            elif name in LEAF_ALLOW and target not in LEAF_ALLOW[name]:
                errors.append(
                    f"{path}:{lineno}: {name} is an observation leaf and "
                    f"may import only "
                    f"{{{', '.join(sorted(LEAF_ALLOW[name]))}}} from the "
                    f"runtime package, not {target}"
                )

    for filename, budget in MAX_LINES.items():
        path = RUNTIME / filename
        lines = sum(1 for _ in path.open())
        if lines >= budget:
            errors.append(
                f"{path}: {lines} lines, budget is < {budget} — split "
                f"responsibilities into a lower layer instead of growing "
                f"the module"
            )

    raw_hash_violations(errors)
    raw_tel_violations(errors)

    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} layering violation(s)")
        return 1
    checked = ", ".join(LAYERS)
    print(f"layering OK ({checked}); "
          + "; ".join(f"{f} under {n} lines" for f, n in MAX_LINES.items())
          + "; no raw-hash placement outside the placement plane"
          + "; no raw TEL access outside the transaction plane")
    return 0


if __name__ == "__main__":
    sys.exit(main())
