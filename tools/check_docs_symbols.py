#!/usr/bin/env python3
"""Stale-symbol gate for README.md and docs/*.md.

Sibling of ``tools/check_docs_links.py``: where that tool resolves file
references, this one resolves **symbol** references. The docs' prose
leans on backticked dotted names — ``Placement.relocate``,
``CheckpointPlane.reshard``, ``AsyncPSTMEngine.submit`` — and a rename
on the code side silently strands them: the docs keep reading fine while
describing an API that no longer exists.

Every backticked ``ClassName.member`` reference (a capitalized head, a
lowercase member — the docs' class-attribute idiom) must resolve against
the source tree: some ``class ClassName`` must exist under ``src/``, and
the file defining it must also define ``member`` (as a ``def``, an
assignment, or an annotated attribute — including inside string literals
is rejected by requiring a definition-shaped line). ``Class.CONSTANT``
references (an all-caps member — class constants and enum values like
``QueryState.PAUSED``) are held to the same standard. Module-qualified
forms (``repro.runtime.migrate.Migrator``) check only their final
``Class.member`` pair; fully-lowercase dotted names (``engine.submit``,
``clock.now`` — instance shorthand whose receiver is prose context) and
tool invocations (``python -m repro``) are out of scope.

Stdlib only (like ``tools/check_layering.py``). Exit 0 = no stale refs.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

#: `Qualified.Name.like.this` — dotted backticked references
TICKED_DOTTED = re.compile(r"`([A-Za-z_][\w.]*\.[\w]+)(?:\(\))?`")

#: definition-shaped lines for a member inside a class body: a def, an
#: assignment, or an annotated attribute, at any indentation
def member_pattern(member: str) -> re.Pattern:
    return re.compile(
        rf"^\s+(?:async\s+def\s+{member}\s*\(|def\s+{member}\s*\("
        rf"|(?:self\.)?{member}\s*[:=])",
        re.MULTILINE,
    )


def class_files() -> dict:
    """Map ``ClassName`` -> list of source files defining it."""
    index: dict = {}
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        for match in re.finditer(r"^class\s+([A-Za-z_]\w*)", text, re.M):
            index.setdefault(match.group(1), []).append(path)
    return index


#: file references (`FAULTS.md`, `BENCH_PR9.json`) — the link checker's
#: territory, not symbols
FILE_EXT = re.compile(r"\.(?:md|py|yml|yaml|json|jsonl|txt)$")


def split_ref(ref: str):
    """Reduce a dotted reference to its final (Class, member) pair, or
    None when the reference is not class-attribute shaped."""
    if FILE_EXT.search(ref):
        return None
    parts = ref.split(".")
    # walk to the last capitalized segment; everything before is a module
    # path, the segment after it the member
    for i in range(len(parts) - 2, -1, -1):
        if parts[i][:1].isupper():
            if i + 2 == len(parts) and parts[i + 1][:1].islower():
                return parts[i], parts[i + 1]
            if i + 2 == len(parts) and parts[i + 1].isupper():
                # Class.CONSTANT — class-level constants and enum members
                # (`QueryState.PAUSED`, `MsgKind.DATA`) rename just as
                # silently as methods do; the member pattern's assignment
                # arm covers their definition shape.
                return parts[i], parts[i + 1]
            return None  # Module.Class chains — not checked
    return None  # fully lowercase: instance shorthand, out of scope


def main() -> int:
    files = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    index = class_files()
    errors = []
    checked = 0
    for path in files:
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for match in TICKED_DOTTED.finditer(line):
                pair = split_ref(match.group(1))
                if pair is None:
                    continue
                cls, member = pair
                checked += 1
                homes = index.get(cls)
                if not homes:
                    errors.append(
                        f"{path.relative_to(ROOT)}:{lineno}: stale symbol "
                        f"`{match.group(1)}` — no `class {cls}` under src/"
                    )
                    continue
                pat = member_pattern(member)
                if not any(pat.search(h.read_text()) for h in homes):
                    defined = ", ".join(
                        str(h.relative_to(ROOT)) for h in homes)
                    errors.append(
                        f"{path.relative_to(ROOT)}:{lineno}: stale symbol "
                        f"`{match.group(1)}` — {cls} ({defined}) defines "
                        f"no member {member!r}"
                    )
    if errors:
        print("\n".join(errors))
        print(f"\n{len(errors)} stale symbol reference(s)")
        return 1
    print(f"docs symbols OK: {checked} class-member references across "
          f"{len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
